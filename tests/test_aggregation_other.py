"""Tests for geometric median, signSGD, Auror and the per-file majority vote."""

import numpy as np
import pytest

from repro.aggregation.auror import AurorAggregator, two_means_1d
from repro.aggregation.geometric_median import GeometricMedianAggregator, geometric_median
from repro.aggregation.majority import MajorityVote, majority_vote
from repro.aggregation.sign_sgd import SignSGDMajorityAggregator
from repro.exceptions import AggregationError


# --------------------------------------------------------------------------- #
# Geometric median
# --------------------------------------------------------------------------- #
def test_geometric_median_of_symmetric_points_is_center():
    votes = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    assert np.allclose(geometric_median(votes), [0.0, 0.0], atol=1e-6)


def test_geometric_median_robust_to_outlier():
    rng = np.random.default_rng(0)
    honest = rng.standard_normal((10, 4)) * 0.1
    votes = np.vstack([honest, np.full((1, 4), 1e5)])
    result = GeometricMedianAggregator()(votes)
    assert np.linalg.norm(result) < 1.0


def test_geometric_median_single_point():
    votes = np.array([[3.0, -2.0]])
    assert np.allclose(geometric_median(votes), [3.0, -2.0])


def test_geometric_median_validation():
    with pytest.raises(AggregationError):
        geometric_median(np.zeros((0, 3)))
    with pytest.raises(AggregationError):
        GeometricMedianAggregator(max_iterations=0)


# --------------------------------------------------------------------------- #
# signSGD
# --------------------------------------------------------------------------- #
def test_signsgd_majority_of_signs():
    votes = np.array([[1.0, -2.0, 0.5], [2.0, -1.0, -0.5], [-3.0, -5.0, 1.0]])
    result = SignSGDMajorityAggregator()(votes)
    assert np.allclose(result, [1.0, -1.0, 1.0])


def test_signsgd_scale():
    votes = np.array([[2.0], [3.0]])
    assert SignSGDMajorityAggregator(scale=0.1)(votes)[0] == pytest.approx(0.1)


def test_signsgd_tied_signs_give_zero():
    votes = np.array([[1.0], [-1.0]])
    assert SignSGDMajorityAggregator()(votes)[0] == 0.0


def test_signsgd_invalid_scale():
    with pytest.raises(AggregationError):
        SignSGDMajorityAggregator(scale=0.0)


# --------------------------------------------------------------------------- #
# Auror
# --------------------------------------------------------------------------- #
def test_two_means_1d_separates_clusters():
    values = np.array([0.0, 0.1, -0.1, 10.0, 10.2])
    labels, low, high = two_means_1d(values)
    assert labels.sum() == 2
    assert low == pytest.approx(0.0, abs=0.2)
    assert high == pytest.approx(10.1, abs=0.2)


def test_two_means_1d_constant_values():
    labels, low, high = two_means_1d(np.full(4, 2.5))
    assert low == high == 2.5
    assert labels.sum() == 0


def test_auror_discards_small_far_cluster():
    rng = np.random.default_rng(0)
    honest = rng.standard_normal((9, 3)) * 0.1
    byzantine = np.full((2, 3), 50.0)
    votes = np.vstack([honest, byzantine])
    result = AurorAggregator()(votes)
    assert np.linalg.norm(result - honest.mean(axis=0)) < 1.0


def test_auror_keeps_everything_when_clusters_close():
    votes = np.array([[0.0, 1.0], [0.1, 1.1], [0.2, 0.9], [0.05, 1.05]])
    result = AurorAggregator(distance_threshold=10.0)(votes)
    assert np.allclose(result, votes.mean(axis=0))


def test_auror_invalid_threshold():
    with pytest.raises(AggregationError):
        AurorAggregator(distance_threshold=0.0)


# --------------------------------------------------------------------------- #
# Majority vote
# --------------------------------------------------------------------------- #
def test_majority_vote_exact_equality():
    good = np.array([1.0, 2.0, 3.0])
    bad = np.array([-9.0, -9.0, -9.0])
    winner, count = majority_vote([good, bad, good])
    assert np.array_equal(winner, good)
    assert count == 2


def test_majority_vote_all_different_returns_first():
    votes = [np.array([float(i)]) for i in range(3)]
    winner, count = majority_vote(votes)
    assert count == 1
    assert winner[0] == 0.0


def test_majority_vote_byzantine_majority_wins():
    good = np.zeros(3)
    bad = np.ones(3)
    winner, count = majority_vote([bad, good, bad])
    assert np.array_equal(winner, bad)
    assert count == 2


def test_majority_vote_with_tolerance_clusters_jittered_votes():
    base = np.array([1.0, 1.0])
    jitter = base + 1e-9
    outlier = np.array([100.0, 100.0])
    winner, count = majority_vote([base, jitter, outlier], tolerance=1e-6)
    assert count == 2
    assert np.allclose(winner, base, atol=1e-8)


def test_majority_vote_validation():
    with pytest.raises(AggregationError):
        majority_vote(np.zeros((0, 3)))
    with pytest.raises(AggregationError):
        majority_vote([np.zeros(3)], tolerance=-1.0)
    with pytest.raises(AggregationError):
        MajorityVote(tolerance=-0.5)


def test_majority_vote_callable_wrapper():
    voter = MajorityVote()
    good = np.array([2.0, 2.0])
    assert np.array_equal(voter([good, good, np.zeros(2)]), good)
    winner, count = voter.with_count([good, good, np.zeros(2)])
    assert count == 2
