"""Tests for repro.graphs.spectral — numerical spectra versus paper Lemma 2."""

import numpy as np
import pytest

from repro.assignment.mols import MOLSAssignment
from repro.exceptions import AssignmentError
from repro.graphs.bipartite import BipartiteAssignment
from repro.graphs.spectral import (
    gram_spectrum,
    normalized_biadjacency,
    second_eigenvalue,
    spectral_gap,
    spectrum_matches,
    theoretical_mols_spectrum,
    theoretical_ramanujan_case2_spectrum,
)


def test_normalized_biadjacency_scaling(mols_assignment):
    A = normalized_biadjacency(mols_assignment)
    H = mols_assignment.biadjacency
    assert np.allclose(A, H / np.sqrt(5 * 3))


def test_top_eigenvalue_is_one(mols_assignment):
    eigenvalues = gram_spectrum(mols_assignment)
    assert eigenvalues[0] == pytest.approx(1.0, abs=1e-9)
    assert np.all(eigenvalues >= -1e-12)
    assert np.all(eigenvalues <= 1.0 + 1e-9)


def test_mols_spectrum_matches_lemma2(mols_assignment):
    observed = gram_spectrum(mols_assignment)
    expected = theoretical_mols_spectrum(l=5, r=3)
    assert spectrum_matches(observed, expected, atol=1e-8)
    assert second_eigenvalue(mols_assignment) == pytest.approx(1.0 / 3.0, abs=1e-9)


def test_ramanujan_case1_spectrum_matches_mols(ramanujan_case1):
    observed = gram_spectrum(ramanujan_case1.assignment)
    expected = theoretical_mols_spectrum(l=5, r=3)
    assert spectrum_matches(observed, expected, atol=1e-8)


def test_ramanujan_case2_spectrum(ramanujan_case2):
    observed = gram_spectrum(ramanujan_case2.assignment)
    expected = theoretical_ramanujan_case2_spectrum(r=5)
    assert spectrum_matches(observed, expected, atol=1e-8)
    assert second_eigenvalue(ramanujan_case2.assignment) == pytest.approx(0.2, abs=1e-9)


def test_spectral_gap(mols_assignment):
    assert spectral_gap(mols_assignment) == pytest.approx(2.0 / 3.0, abs=1e-9)


def test_mols_7_5_spectrum():
    assignment = MOLSAssignment(load=7, replication=5).assignment
    observed = gram_spectrum(assignment)
    assert spectrum_matches(observed, theoretical_mols_spectrum(l=7, r=5), atol=1e-8)


def test_second_eigenvalue_single_worker_raises():
    single = BipartiteAssignment(np.ones((1, 2), dtype=np.int8))
    with pytest.raises(AssignmentError):
        second_eigenvalue(single)


def test_spectrum_matches_rejects_wrong_multiplicity():
    observed = gram_spectrum(MOLSAssignment(load=5, replication=3).assignment)
    wrong = [(1.0, 2), (1.0 / 3.0, 12), (0.0, 1)]
    assert not spectrum_matches(observed, wrong)
