"""Tests for repro.graphs.expansion — Lemma 1 / Claim 1 bounds."""

import itertools

import pytest

from repro.core.distortion import count_distorted
from repro.exceptions import ConfigurationError
from repro.graphs.expansion import (
    distortion_fraction_upper_bound,
    gamma_upper_bound,
    mols_epsilon_upper_bound,
    neighborhood_lower_bound,
    ramanujan_case2_epsilon_upper_bound,
)
from repro.graphs.spectral import second_eigenvalue


def test_neighborhood_bound_zero_byzantine():
    assert neighborhood_lower_bound(0, 5, 3, 15, 1 / 3) == 0.0


def test_neighborhood_bound_monotone_in_q(mols_assignment):
    mu1 = second_eigenvalue(mols_assignment)
    values = [
        neighborhood_lower_bound(q, 5, 3, 15, mu1) for q in range(1, 8)
    ]
    assert all(b > a for a, b in zip(values, values[1:]))


def test_neighborhood_bound_is_valid_lower_bound(mols_assignment):
    """|N(S)| >= beta for every actual Byzantine set (Lemma 1 / Eq. (5))."""
    mu1 = second_eigenvalue(mols_assignment)
    for q in (2, 3):
        beta = neighborhood_lower_bound(q, 5, 3, 15, mu1)
        for subset in itertools.combinations(range(15), q):
            neighborhood = mols_assignment.files_of_workers(subset)
            assert len(neighborhood) >= beta - 1e-9


def test_neighborhood_bound_validates_mu1():
    with pytest.raises(ConfigurationError):
        neighborhood_lower_bound(2, 5, 3, 15, 1.5)
    with pytest.raises(ConfigurationError):
        neighborhood_lower_bound(-1, 5, 3, 15, 0.3)


def test_gamma_matches_paper_table3_values():
    expected = {2: 2.11, 3: 4.29, 4: 6.96, 5: 10.0, 6: 13.33, 7: 16.9}
    for q, gamma in expected.items():
        assert gamma_upper_bound(q, 5, 3, 15, 1 / 3) == pytest.approx(gamma, abs=0.01)


def test_gamma_matches_paper_table4_values():
    expected = {3: 2.43, 6: 7.35, 9: 13.28, 12: 19.73}
    for q, gamma in expected.items():
        assert gamma_upper_bound(q, 5, 5, 25, 1 / 5) == pytest.approx(gamma, abs=0.01)


def test_gamma_requires_odd_replication():
    with pytest.raises(ConfigurationError):
        gamma_upper_bound(2, 5, 4, 20, 0.25)
    with pytest.raises(ConfigurationError):
        gamma_upper_bound(2, 5, 1, 5, 0.5)


def test_gamma_zero_byzantine():
    assert gamma_upper_bound(0, 5, 3, 15, 1 / 3) == 0.0


def test_gamma_is_an_upper_bound_on_actual_distortion(mols_assignment):
    mu1 = second_eigenvalue(mols_assignment)
    for q in (2, 3, 4):
        gamma = gamma_upper_bound(q, 5, 3, 15, mu1)
        worst = max(
            count_distorted(mols_assignment, subset)
            for subset in itertools.combinations(range(15), q)
        )
        assert worst <= gamma + 1e-9


def test_distortion_fraction_upper_bound_uses_graph_mu1(mols_assignment):
    bound = distortion_fraction_upper_bound(mols_assignment, 3)
    assert bound == pytest.approx(4.29 / 25, abs=0.001)
    explicit = distortion_fraction_upper_bound(mols_assignment, 3, mu1=1 / 3)
    assert bound == pytest.approx(explicit, abs=1e-9)


def test_closed_form_mols_bound_equals_gamma_over_f():
    for q in range(1, 8):
        closed = mols_epsilon_upper_bound(q, l=5, r=3)
        gamma = gamma_upper_bound(q, 5, 3, 15, 1 / 3)
        assert closed == pytest.approx(gamma / 25, rel=1e-9)


def test_closed_form_ramanujan2_bound_equals_gamma_over_f():
    for q in range(1, 13):
        closed = ramanujan_case2_epsilon_upper_bound(q, r=5)
        gamma = gamma_upper_bound(q, 5, 5, 25, 1 / 5)
        assert closed == pytest.approx(gamma / 25, rel=1e-9)


def test_closed_form_bounds_zero_and_negative_q():
    assert mols_epsilon_upper_bound(0, 5, 3) == 0.0
    assert ramanujan_case2_epsilon_upper_bound(0, 5) == 0.0
    with pytest.raises(ConfigurationError):
        mols_epsilon_upper_bound(-1, 5, 3)
    with pytest.raises(ConfigurationError):
        ramanujan_case2_epsilon_upper_bound(-2, 5)
