"""Blockwise (coordinate-sharded) kernels are bit-identical to monolithic.

Every aggregator that gained a ``block_size`` mode streams coordinate blocks
of ``d`` through a fixed workspace.  The streaming reorders *which columns*
a stage sees at once, never the values a selection or an accumulation
consumes — boolean AND accumulation, uint64 modular hash sums and per-column
selections (sort / partition / argsort) are width-independent, and every
float mean runs once over the same contiguous full-width operand — so the
results must match the monolithic kernels bit for bit, not approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.krum import KrumAggregator, MultiKrumAggregator, krum_scores
from repro.aggregation.majority import majority_vote_tensor, majority_vote_votetensor
from repro.aggregation.median_of_means import MedianOfMeansAggregator
from repro.aggregation.trimmed_mean import TrimmedMeanAggregator
from repro.assignment.mols import MOLSAssignment
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import AggregationError
from repro.utils.arrays import pairwise_squared_distances

BLOCK_SIZES = [1, 7, 64, 10**6]
DIMS = [1, 5, 63, 130]


def attacked_matrix(rng, n=11, d=64):
    """An (n, d) vote matrix with wild scale spread and adversarial rows."""
    matrix = rng.standard_normal((n, d)) * 10.0 ** float(rng.integers(-3, 4))
    q = int(rng.integers(0, n // 3 + 1))
    for row in rng.choice(n, size=q, replace=False):
        matrix[row] = rng.standard_normal(d) * 1e4
    return matrix


def make_aggregators(matrix, block_size):
    n = matrix.shape[0]
    q = max(0, (n - 3) // 4)
    return [
        TrimmedMeanAggregator(trim=2, block_size=block_size),
        TrimmedMeanAggregator(trim=0, block_size=block_size),
        MedianOfMeansAggregator(num_groups=3, block_size=block_size),
        KrumAggregator(num_byzantine=q, block_size=block_size),
        MultiKrumAggregator(num_byzantine=q, block_size=block_size),
        BulyanAggregator(num_byzantine=q, block_size=block_size),
    ]


class TestBlockwiseBitIdentity:
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("dim", DIMS)
    def test_aggregators_match_monolithic(self, block_size, dim):
        rng = np.random.default_rng(dim * 1009 + block_size % 997)
        for trial in range(5):
            matrix = attacked_matrix(rng, d=dim)
            for blk, mono in zip(
                make_aggregators(matrix, block_size),
                make_aggregators(matrix, None),
            ):
                result_blk = blk(matrix.copy())
                result_mono = mono(matrix.copy())
                assert np.array_equal(result_blk, result_mono), (
                    type(blk).__name__, trial
                )

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_pairwise_distances_rank_equivalent(self, block_size):
        """Blockwise distance sums may differ in the last ulp, but Krum's
        selection (the only consumer) must not change — checked directly on
        the score ordering."""
        rng = np.random.default_rng(3)
        matrix = attacked_matrix(rng, n=13, d=97)
        mono = krum_scores(matrix, num_byzantine=2)
        blk = krum_scores(matrix, num_byzantine=2, block_size=block_size)
        assert np.array_equal(np.argsort(mono, kind="stable"),
                              np.argsort(blk, kind="stable"))
        d_mono = pairwise_squared_distances(matrix)
        d_blk = pairwise_squared_distances(matrix, block_size=block_size)
        assert np.allclose(d_mono, d_blk, rtol=1e-12)

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_majority_vote_tensor_matches(self, block_size):
        rng = np.random.default_rng(11)
        for trial in range(5):
            values = rng.standard_normal((9, 5, 83))
            # replicate an honest payload into most slots, corrupt a few
            values[:] = values[:, :1, :]
            for i, k in zip(rng.integers(0, 9, 6), rng.integers(0, 5, 6)):
                values[i, k] = rng.standard_normal(83)
            mono_w, mono_c = majority_vote_tensor(values)
            blk_w, blk_c = majority_vote_tensor(values, block_size=block_size)
            assert np.array_equal(blk_w, mono_w)
            assert np.array_equal(blk_c, mono_c)

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("dense", [False, True], ids=["lazy", "dense"])
    def test_majority_vote_votetensor_matches(self, block_size, dense):
        assignment = MOLSAssignment(load=5, replication=3).assignment
        rng = np.random.default_rng(23)
        honest = rng.standard_normal((assignment.num_files, 70))
        tensor = VoteTensor.from_honest(assignment, honest)
        for w in (0, 3, 7, 12):
            payload = rng.standard_normal(70) * 100.0
            for i in assignment.files_of_worker(w):
                tensor.set_vote(i, w, payload)
        if dense:
            tensor.values
        mono_w, mono_c = majority_vote_votetensor(tensor, 0.0)
        blk_w, blk_c = majority_vote_votetensor(tensor, 0.0, block_size=block_size)
        assert np.array_equal(blk_w, mono_w)
        assert np.array_equal(blk_c, mono_c)


class TestBlockSizeValidation:
    @pytest.mark.parametrize("block_size", [0, -1])
    def test_rejects_non_positive(self, block_size):
        with pytest.raises(AggregationError):
            TrimmedMeanAggregator(trim=1, block_size=block_size)
        with pytest.raises(AggregationError):
            KrumAggregator(num_byzantine=1, block_size=block_size)

    def test_block_larger_than_dim_is_monolithic(self):
        rng = np.random.default_rng(5)
        matrix = attacked_matrix(rng, d=16)
        agg = TrimmedMeanAggregator(trim=2, block_size=10**9)
        assert np.array_equal(agg(matrix), TrimmedMeanAggregator(trim=2)(matrix))
