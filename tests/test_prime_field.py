"""Tests for repro.fields.prime_field."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fields.prime_field import PrimeField


def test_construction_requires_prime():
    PrimeField(5)
    PrimeField(2)
    with pytest.raises(ConfigurationError):
        PrimeField(6)
    with pytest.raises(ConfigurationError):
        PrimeField(1)


def test_basic_arithmetic_mod_5():
    field = PrimeField(5)
    assert field.add(3, 4) == 2
    assert field.sub(1, 3) == 3
    assert field.mul(3, 4) == 2
    assert field.neg(2) == 3
    assert field.element(12) == 2


def test_vectorized_arithmetic():
    field = PrimeField(7)
    a = np.arange(7)
    assert np.array_equal(field.add(a, a), (2 * a) % 7)
    assert np.array_equal(field.mul(a, 3), (3 * a) % 7)


def test_inverse_and_division():
    field = PrimeField(11)
    for x in range(1, 11):
        assert field.mul(x, field.inv(x)) == 1
    assert field.div(6, 3) == field.mul(6, field.inv(3))


def test_inverse_of_zero_raises():
    field = PrimeField(5)
    with pytest.raises(ZeroDivisionError):
        field.inv(0)
    with pytest.raises(ZeroDivisionError):
        field.inv(np.array([1, 0, 2]))


def test_vectorized_inverse():
    field = PrimeField(13)
    values = np.arange(1, 13)
    inverses = field.inv(values)
    assert np.all(field.mul(values, inverses) == 1)


def test_pow_matches_repeated_multiplication():
    field = PrimeField(7)
    assert field.pow(3, 0) == 1
    assert field.pow(3, 4) == pow(3, 4, 7)
    assert field.pow(3, -1) == field.inv(3)


def test_solve_linear_2x2_unique_solution():
    field = PrimeField(5)
    # i + j = 4, 2i + j = 1  =>  i = 2 (since 2i - i = 1 - 4 = -3 = 2), j = 2
    i, j = field.solve_linear_2x2(1, 1, 2, 1, 4, 1)
    assert (field.add(i, j), field.add(field.mul(2, i), j)) == (4, 1)


def test_solve_linear_2x2_singular_raises():
    field = PrimeField(5)
    with pytest.raises(ConfigurationError):
        field.solve_linear_2x2(1, 1, 2, 2, 0, 1)


def test_elements_len_contains_eq_hash():
    field = PrimeField(5)
    assert np.array_equal(field.elements(), np.arange(5))
    assert len(field) == 5
    assert 4 in field and 5 not in field
    assert field == PrimeField(5)
    assert field != PrimeField(7)
    assert hash(field) == hash(PrimeField(5))
