"""End-to-end tests of the dtype seam: float32 through the whole round loop.

The backend seam (:mod:`repro.core.backend`) replaces the hard-coded
``np.float64`` coercions so the same code runs in ``float32`` or ``float64``
end to end.  These tests pin (a) that a ``float32`` round really stays
``float32`` from the model's backward pass to the PS update, (b) that the
vectorized majority kernel is correct on ``float32`` payloads, and (c) that
the default ``float64`` path — which all golden traces pin bit-exactly — is
untouched by the seam.
"""

import numpy as np
import pytest

from repro.aggregation import majority as majority_module
from repro.aggregation.majority import majority_vote_tensor
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import ConfigurationError
from repro.nn.models import build_cnn, build_mlp, build_resnet_lite
from repro.nn.optim import SGD
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.training.gradients import ModelGradientComputer


def scenario_dict(dtype=None, name="dtype-seam"):
    out = {
        "name": name,
        "seed": 5,
        "cluster": {"scheme": "mols", "params": {"load": 5, "replication": 3}},
        "pipeline": {"kind": "byzshield", "aggregator": "median"},
        "data": {"num_train": 150, "num_test": 50, "num_classes": 3, "dim": 8},
        "model": {"hidden": [10]},
        "training": {"batch_size": 75, "num_iterations": 3, "eval_every": 2},
        "attack": {
            "name": "alie",
            "schedule": {"kind": "static", "q": 2},
        },
    }
    if dtype is not None:
        out["dtype"] = dtype
    return out


# --------------------------------------------------------------------------- #
# Spec-level plumbing
# --------------------------------------------------------------------------- #
def test_spec_dtype_roundtrip_and_validation():
    spec = ScenarioSpec.from_dict(scenario_dict("float32"))
    assert spec.dtype == "float32"
    assert spec.to_dict()["dtype"] == "float32"
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict(scenario_dict("float16"))


def test_default_dtype_does_not_change_spec_digest():
    """float64 is omitted from the canonical dict so every pre-seam spec —
    and the golden traces pinned to its digest — hashes unchanged."""
    implicit = ScenarioSpec.from_dict(scenario_dict())
    explicit = ScenarioSpec.from_dict(scenario_dict("float64"))
    assert "dtype" not in implicit.to_dict()
    assert "dtype" not in explicit.to_dict()
    assert implicit.digest() == explicit.digest()
    assert implicit.digest() != ScenarioSpec.from_dict(scenario_dict("float32")).digest()


# --------------------------------------------------------------------------- #
# Models and gradients
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "builder, kwargs",
    [
        (build_mlp, {"input_dim": 8, "num_classes": 3, "hidden": (6,)}),
        (
            build_cnn,
            {
                "input_shape": (1, 8, 8),
                "num_classes": 3,
                "channels": (2,),
                "dense_width": 6,
            },
        ),
        (build_resnet_lite, {"input_dim": 8, "num_classes": 3, "width": 6}),
    ],
    ids=["mlp", "cnn", "resnet_lite"],
)
def test_builders_respect_dtype(builder, kwargs):
    f32 = builder(seed=0, dtype="float32", **kwargs)
    f64 = builder(seed=0, **kwargs)
    assert f32.dtype == np.float32 and f64.dtype == np.float64
    assert f32.get_flat_params().dtype == np.float32
    assert f64.get_flat_params().dtype == np.float64
    # same seed: the float32 weights are the float64 draws, rounded
    np.testing.assert_array_equal(
        f32.get_flat_params(), f64.get_flat_params().astype(np.float32)
    )


def test_gradient_engine_emits_model_dtype():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((12, 8))
    y = rng.integers(0, 3, 12)
    for dtype in ("float32", "float64"):
        model = build_mlp(8, 3, hidden=(6,), seed=2, dtype=dtype)
        computer = ModelGradientComputer(model)
        params = model.get_flat_params()
        gradient, loss = computer(params, x, y)
        assert gradient.dtype == np.dtype(dtype)
        assert isinstance(loss, float)
        stacked, losses = computer.batched(params, [(x[:6], y[:6]), (x[6:], y[6:])])
        assert stacked.dtype == np.dtype(dtype)
        assert losses.dtype == np.dtype(dtype)  # per-file losses follow the model


def test_sgd_step_preserves_dtype():
    opt = SGD(0.1, momentum=0.9)
    for dtype in (np.float32, np.float64):
        params = np.ones(5, dtype=dtype)
        gradient = np.full(5, 0.5, dtype=dtype)
        out = opt.step_vector(params, gradient)
        assert out.dtype == dtype
        out = opt.step_vector(out, gradient)
        assert out.dtype == dtype


# --------------------------------------------------------------------------- #
# Majority kernel on float32 payloads
# --------------------------------------------------------------------------- #
def test_majority_kernel_float32_matches_reference():
    rng = np.random.default_rng(8)
    for trial in range(60):
        f, r, d = rng.integers(1, 6), rng.integers(1, 6), rng.integers(1, 8)
        values = rng.integers(-2, 3, (f, r, d)).astype(np.float32)
        if trial % 2 == 0:
            values[:, 1:] = values[:, :1]
        for tolerance in (0.0, 1.5):
            winners, counts = majority_vote_tensor(values, tolerance)
            assert winners.dtype == np.float32
            for i in range(f):
                if tolerance == 0.0:
                    ref_w, ref_c = majority_module._reference_exact_majority(values[i])
                else:
                    ref_w, ref_c = majority_module._reference_clustered_majority(
                        values[i], tolerance
                    )
                assert np.array_equal(winners[i], ref_w), (trial, tolerance, i)
                assert counts[i] == ref_c


def test_majority_kernel_float32_bit_semantics():
    """Exact voting compares uint32 bit patterns on float32 payloads."""
    values = np.zeros((1, 3, 1), dtype=np.float32)
    values[0, 0] = -0.0
    values[0, 1] = 0.0
    values[0, 2] = -0.0
    winners, counts = majority_vote_tensor(values)
    assert counts[0] == 2 and np.signbit(winners[0, 0])


def test_vote_tensor_rejects_nothing_but_propagates_dtype(mols_assignment):
    matrix32 = np.zeros((mols_assignment.num_files, 4), dtype=np.float32)
    t = VoteTensor.from_honest(mols_assignment, matrix32)
    assert t.dtype == np.float32
    winners = t.slot_rows(0)
    assert winners.dtype == np.float32


# --------------------------------------------------------------------------- #
# Full scenario runs
# --------------------------------------------------------------------------- #
def test_float32_scenario_runs_and_is_deterministic():
    spec = ScenarioSpec.from_dict(scenario_dict("float32"))
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first.trace.rounds  # it actually trained
    assert first.trace.to_dict() == second.trace.to_dict()
    assert first.trace.spec_digest == spec.digest()


def test_float32_scenario_tracks_float64_within_tolerance():
    """float32 is a *numerically close* rerun of the float64 scenario, not a
    bit-exact one: same schedule, same adversary, small rounding drift."""
    res64 = run_scenario(ScenarioSpec.from_dict(scenario_dict()))
    res32 = run_scenario(ScenarioSpec.from_dict(scenario_dict("float32")))
    assert len(res32.trace.rounds) == len(res64.trace.rounds)
    for r32, r64 in zip(res32.trace.rounds, res64.trace.rounds):
        assert r32.q == r64.q and r32.byzantine == r64.byzantine
        loss32 = float.fromhex(r32.mean_loss_hex)
        loss64 = float.fromhex(r64.mean_loss_hex)
        assert loss32 == pytest.approx(loss64, rel=1e-3)
    np.testing.assert_allclose(
        res32.history.train_losses, res64.history.train_losses, rtol=1e-3
    )
