"""Tests for repro.utils.validation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_odd,
    check_positive_int,
    check_prime,
    check_probability,
    is_prime,
    is_prime_power,
)


def test_check_positive_int_accepts_positive():
    assert check_positive_int(3, "x") == 3


@pytest.mark.parametrize("bad", [0, -1, 1.5, True, "3"])
def test_check_positive_int_rejects(bad):
    with pytest.raises(ConfigurationError):
        check_positive_int(bad, "x")


def test_check_probability_bounds():
    assert check_probability(0.0, "p") == 0.0
    assert check_probability(1.0, "p") == 1.0
    with pytest.raises(ConfigurationError):
        check_probability(1.5, "p")
    with pytest.raises(ConfigurationError):
        check_probability(-0.1, "p")


def test_check_odd():
    assert check_odd(3, "r") == 3
    with pytest.raises(ConfigurationError):
        check_odd(4, "r")


def test_check_in_range():
    assert check_in_range(0.5, 0, 1, "x") == 0.5
    with pytest.raises(ConfigurationError):
        check_in_range(2, 0, 1, "x")


@pytest.mark.parametrize(
    "n,expected",
    [
        (0, False),
        (1, False),
        (2, True),
        (3, True),
        (4, False),
        (5, True),
        (7, True),
        (9, False),
        (25, False),
        (97, True),
        (121, False),
        (7919, True),
    ],
)
def test_is_prime(n, expected):
    assert is_prime(n) is expected


def test_check_prime():
    assert check_prime(7, "l") == 7
    with pytest.raises(ConfigurationError):
        check_prime(8, "l")


@pytest.mark.parametrize(
    "n,expected",
    [(2, True), (4, True), (8, True), (9, True), (12, False), (27, True), (1, False), (6, False)],
)
def test_is_prime_power(n, expected):
    assert is_prime_power(n) is expected
