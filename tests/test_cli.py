"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table3" in out
    assert "fig12" in out


def test_table_command(capsys):
    assert main(["table", "table3"]) == 0
    out = capsys.readouterr().out
    assert "epsilon_byzshield" in out
    assert "0.040" in out  # q=2 row of Table 3


def test_table_command_with_method_and_csv(tmp_path, capsys):
    csv_path = tmp_path / "table3.csv"
    assert main(["--csv", str(csv_path), "table", "table3", "--method", "local_search"]) == 0
    assert csv_path.exists()
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("q,c_max")


def test_figure12_command(capsys):
    assert main(["figure", "fig12"]) == 0
    out = capsys.readouterr().out
    assert "ByzShield" in out
    assert "communication" in out


def test_figure_accuracy_command_tiny(capsys, tmp_path):
    csv_path = tmp_path / "fig9.csv"
    assert main(["--csv", str(csv_path), "figure", "fig9", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "ByzShield, q=2" in out
    assert csv_path.exists()


def test_bounds_command(capsys):
    assert main(["bounds"]) == 0
    out = capsys.readouterr().out
    assert "Claim 2" in out
    assert "gamma" in out


def test_distortion_command_mols(capsys):
    assert main(["distortion", "--scheme", "mols", "--load", "5", "--replication", "3", "--q", "2", "3"]) == 0
    out = capsys.readouterr().out
    assert "mols(l=5,r=3)" in out


def test_distortion_command_frc(capsys):
    assert main(
        ["distortion", "--scheme", "frc", "--num-workers", "15", "--replication", "3", "--q", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "frc" in out


def test_distortion_command_baseline_and_random(capsys):
    assert main(["distortion", "--scheme", "baseline", "--num-workers", "10", "--q", "2"]) == 0
    assert main(
        [
            "distortion",
            "--scheme",
            "random",
            "--num-workers",
            "15",
            "--num-files",
            "25",
            "--replication",
            "3",
            "--q",
            "3",
        ]
    ) == 0


def test_distortion_command_ramanujan(capsys):
    assert main(["distortion", "--scheme", "ramanujan", "--m", "5", "--s", "5", "--q", "3"]) == 0
    out = capsys.readouterr().out
    assert "ramanujan" in out


def test_error_exit_code(capsys):
    # FRC with K not divisible by r is a configuration error -> exit code 1.
    assert main(
        ["distortion", "--scheme", "frc", "--num-workers", "16", "--replication", "3", "--q", "2"]
    ) == 1
    assert "error:" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_choice_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table", "table99"])


def test_scenario_list_command(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "mols-alie-all-faults" in out
    assert "repro scenario run" in out


def test_scenario_run_catalog_name(capsys):
    assert main(["scenario", "run", "mols-clean"]) == 0
    out = capsys.readouterr().out
    assert "mols-clean" in out
    assert "final_params_digest" in out


def test_scenario_run_spec_file(tmp_path, capsys):
    example = pathlib.Path(__file__).parent.parent / "examples" / "scenario_mols_alie_faults.json"
    trace_out = tmp_path / "trace.json"
    assert main(["scenario", "run", str(example), "--trace-out", str(trace_out)]) == 0
    out = capsys.readouterr().out
    assert "example-mols-alie-faults" in out
    assert trace_out.exists()


def test_scenario_run_requires_target(capsys):
    assert main(["scenario", "run"]) == 1
    assert "requires" in capsys.readouterr().err


def test_scenario_run_unknown_name_fails_cleanly(capsys):
    assert main(["scenario", "run", "no-such-scenario"]) == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_scenario_record_and_replay_round_trip(tmp_path, capsys):
    golden_dir = tmp_path / "golden"
    assert (
        main(["scenario", "record", "--name", "mols-clean", "--golden-dir", str(golden_dir)])
        == 0
    )
    assert (golden_dir / "mols-clean.json").exists()
    assert (
        main(["scenario", "replay", "--name", "mols-clean", "--golden-dir", str(golden_dir)])
        == 0
    )
    out = capsys.readouterr().out
    assert "ok mols-clean" in out


def test_scenario_matrix_ablation(capsys, tmp_path):
    csv_path = tmp_path / "matrix.csv"
    assert main(["--csv", str(csv_path), "ablation", "scenarios"]) == 0
    out = capsys.readouterr().out
    assert "Fault-injection scenario matrix" in out
    assert "mols-alie-all-faults" in out
    assert csv_path.read_text().startswith("scenario,")


def test_scenario_run_catalog_name_wins_over_cwd_entry(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mols-clean").mkdir()  # would shadow the catalog if paths won
    assert main(["scenario", "run", "mols-clean"]) == 0
    assert "final_params_digest" in capsys.readouterr().out


def test_scenario_record_accepts_positional_name(tmp_path, capsys):
    golden_dir = tmp_path / "g"
    assert main(["scenario", "record", "mols-clean", "--golden-dir", str(golden_dir)]) == 0
    assert [p.name for p in golden_dir.iterdir()] == ["mols-clean.json"]
