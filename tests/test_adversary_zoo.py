"""Tests for the adaptive adversary zoo and the attack registry contract.

Covers the collusive inner-product / sign-flip payloads, the Fang
aggregator-aware search (every simulated defense), the AGR-agnostic
min-max / min-sum bisection, the dict-adapter vs ``apply_tensor``
bit-identity required of every family, and the registry's sorted-names /
no-silent-overwrite guarantees.
"""

import numpy as np
import pytest

from repro.attacks.adaptive import (
    FangAdaptiveAttack,
    MinMaxAttack,
    MinSumAttack,
    _corrupted_file_indices,
)
from repro.attacks.base import Attack, AttackContext
from repro.attacks.inner_product import InnerProductManipulationAttack
from repro.attacks.registry import available_attacks, create_attack, register_attack
from repro.attacks.sign_flip import SignFlipAttack
from repro.core.distortion import distorted_files
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import AttackError, ConfigurationError

DIM = 9


def make_context(assignment, byzantine, seed=0):
    rng = np.random.default_rng(seed)
    honest = rng.standard_normal((assignment.num_files, DIM))
    return AttackContext(
        assignment=assignment,
        byzantine_workers=tuple(byzantine),
        honest_file_gradients={i: honest[i] for i in range(honest.shape[0])},
        iteration=0,
        rng=np.random.default_rng(seed + 1),
        honest_matrix=honest,
    )


# --------------------------------------------------------------------------- #
# Inner-product manipulation
# --------------------------------------------------------------------------- #
def test_inner_product_payload_reverses_mean(mols_assignment):
    context = make_context(mols_assignment, (0, 5, 9))
    attack = InnerProductManipulationAttack(epsilon=0.5)
    crafted = attack.apply(context)
    mean = context.stacked_honest_gradients().mean(axis=0)
    for payload in crafted.values():
        assert np.array_equal(payload, -0.5 * mean)
    # Negative inner product with the descent direction is the whole point.
    assert float(next(iter(crafted.values())) @ mean) < 0


def test_inner_product_validation():
    with pytest.raises(AttackError):
        InnerProductManipulationAttack(epsilon=0.0)
    with pytest.raises(AttackError):
        InnerProductManipulationAttack(epsilon=float("nan"))
    with pytest.raises(AttackError):
        InnerProductManipulationAttack().craft(None, 0, 0)


# --------------------------------------------------------------------------- #
# Sign-flip collusion
# --------------------------------------------------------------------------- #
def test_sign_flip_opposes_mean_sign(mols_assignment):
    context = make_context(mols_assignment, (0, 5))
    attack = SignFlipAttack(magnitude=2.0)
    attack.prepare(context)
    mean = context.stacked_honest_gradients().mean(axis=0)
    payload = attack.craft(context, 0, 0)
    assert np.all(np.abs(payload) == 2.0)
    assert np.all(np.sign(payload[mean > 0]) == -1)
    assert np.all(np.sign(payload[mean < 0]) == 1)


def test_sign_flip_zero_mean_coordinate_pushes_negative(mols_assignment):
    honest = np.zeros((mols_assignment.num_files, DIM))
    context = AttackContext(
        assignment=mols_assignment,
        byzantine_workers=(0,),
        honest_file_gradients={i: honest[i] for i in range(honest.shape[0])},
        honest_matrix=honest,
    )
    attack = SignFlipAttack()
    attack.prepare(context)
    assert np.all(attack.craft(context, 0, 0) == -1.0)


def test_sign_flip_validation():
    with pytest.raises(AttackError):
        SignFlipAttack(magnitude=0.0)
    with pytest.raises(AttackError):
        SignFlipAttack().craft(None, 0, 0)


# --------------------------------------------------------------------------- #
# Fang aggregator-aware search
# --------------------------------------------------------------------------- #
def test_corrupted_files_prefers_majority_distorted(mols_assignment):
    byzantine = (0, 1, 2, 3)
    context = make_context(mols_assignment, byzantine)
    expected = distorted_files(mols_assignment, byzantine)
    if expected.size:
        assert np.array_equal(_corrupted_file_indices(context), expected)


def test_corrupted_files_falls_back_to_touched(mols_assignment):
    # A single Byzantine worker cannot corrupt any r=3 majority, so the
    # fallback is every file it touches.
    context = make_context(mols_assignment, (4,))
    assert distorted_files(mols_assignment, (4,)).size == 0
    touched = sorted(int(f) for f in mols_assignment.files_of_worker(4))
    assert _corrupted_file_indices(context).tolist() == touched


@pytest.mark.parametrize("defense", FangAdaptiveAttack.DEFENSES)
def test_fang_deviates_simulated_defense(mols_assignment, defense):
    context = make_context(mols_assignment, (0, 1, 2, 3))
    attack = FangAdaptiveAttack(defense=defense)
    attack.prepare(context)
    honest = context.stacked_honest_gradients()
    payload = attack.craft(context, 0, 0)
    corrupted = _corrupted_file_indices(context)
    population = np.array(honest, copy=True)
    population[corrupted] = payload
    if defense == "krum":
        # The crafted payload moves against the mean along sign(mean).
        mean = honest.mean(axis=0)
        assert float((payload - mean) @ np.sign(mean + (mean == 0))) < 0
    else:
        trim = min(corrupted.size, (honest.shape[0] - 1) // 2)
        aggregate = {
            "median": lambda m: np.median(m, axis=0),
            "trimmed_mean": lambda m: np.sort(m, axis=0)[
                trim : m.shape[0] - trim
            ].mean(axis=0),
            "mean": lambda m: m.mean(axis=0),
        }[defense]
        sign = np.where(honest.mean(axis=0) >= 0.0, 1.0, -1.0)
        deviation = float((aggregate(honest) - aggregate(population)) @ sign)
        assert deviation > 0


def test_fang_insertion_median_matches_dense_simulation(mols_assignment):
    # The searchsorted/prefix-sum closed forms must agree with literally
    # rebuilding the corrupted population and aggregating it.
    context = make_context(mols_assignment, (0, 1, 2, 3), seed=3)
    honest = context.stacked_honest_gradients()
    corrupted = _corrupted_file_indices(context)
    uncorrupted = np.setdiff1d(np.arange(honest.shape[0]), corrupted)
    reference = honest[uncorrupted]
    sorted_ref = np.sort(reference, axis=0)
    prefix = np.vstack(
        [np.zeros((1, DIM)), np.cumsum(sorted_ref, axis=0)]
    )
    payload = honest.min(axis=0) - 1.7
    population = np.array(honest, copy=True)
    population[corrupted] = payload
    n, k = honest.shape[0], corrupted.size
    clamped = min(k, (n - 1) // 2)
    for defense, trim in (("median", 0), ("trimmed_mean", clamped), ("mean", 0)):
        attack = FangAdaptiveAttack(defense=defense)
        closed = attack._defense_with_insertion(
            sorted_ref, prefix, payload, n, k, trim
        )
        dense = {
            "median": lambda: np.median(population, axis=0),
            "trimmed_mean": lambda: np.sort(population, axis=0)[
                trim : n - trim
            ].mean(axis=0),
            "mean": lambda: population.mean(axis=0),
        }[defense]()
        np.testing.assert_allclose(closed, dense, rtol=1e-12, atol=1e-12)


def test_fang_krum_payload_is_selected(mols_assignment):
    context = make_context(mols_assignment, (0, 1, 2, 3), seed=5)
    attack = FangAdaptiveAttack(defense="krum")
    attack.prepare(context)
    honest = context.stacked_honest_gradients()
    corrupted = _corrupted_file_indices(context)
    payload = attack.craft(context, 0, 0)
    population = np.array(honest, copy=True)
    population[corrupted] = payload
    # Re-run a reference Krum over the corrupted population.
    f = population.shape[0]
    sq = np.einsum("ij,ij->i", population, population)
    distances = sq[:, None] + sq[None, :] - 2.0 * population @ population.T
    np.fill_diagonal(distances, np.inf)
    neighbors = max(1, f - min(corrupted.size, f - 3) - 2)
    scores = np.sort(distances, axis=1)[:, :neighbors].sum(axis=1)
    assert int(np.argmin(scores)) in set(int(i) for i in corrupted)


def test_fang_q0_prepare_is_safe(mols_assignment):
    context = make_context(mols_assignment, ())
    attack = FangAdaptiveAttack()
    attack.prepare(context)
    assert np.array_equal(
        attack.craft(context, 0, 0), context.stacked_honest_gradients().mean(axis=0)
    )


def test_fang_validation():
    with pytest.raises(AttackError):
        FangAdaptiveAttack(defense="bulyan")
    with pytest.raises(AttackError):
        FangAdaptiveAttack(lambda_init=0.0)
    with pytest.raises(AttackError):
        FangAdaptiveAttack(num_steps=0)
    with pytest.raises(AttackError):
        FangAdaptiveAttack(trim=-1)
    with pytest.raises(AttackError):
        FangAdaptiveAttack(rtol=1.0)


# --------------------------------------------------------------------------- #
# Min-max / min-sum
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("direction", MinMaxAttack.DIRECTIONS)
def test_min_max_respects_spread_bound(mols_assignment, direction):
    context = make_context(mols_assignment, (0, 5, 9), seed=2)
    attack = MinMaxAttack(direction=direction)
    attack.prepare(context)
    honest = context.stacked_honest_gradients()
    payload = attack.craft(context, 0, 0)
    max_to_honest = max(
        float(np.sum((payload - row) ** 2)) for row in honest
    )
    pair_max = max(
        float(np.sum((a - b) ** 2)) for a in honest for b in honest
    )
    assert max_to_honest <= pair_max + 1e-9
    # And the attack actually moved off the honest mean.
    assert not np.allclose(payload, honest.mean(axis=0))


def test_min_sum_respects_total_bound(mols_assignment):
    context = make_context(mols_assignment, (0, 5, 9), seed=2)
    attack = MinSumAttack()
    attack.prepare(context)
    honest = context.stacked_honest_gradients()
    payload = attack.craft(context, 0, 0)
    total = sum(float(np.sum((payload - row) ** 2)) for row in honest)
    bound = max(
        sum(float(np.sum((a - b) ** 2)) for b in honest) for a in honest
    )
    assert total <= bound + 1e-9


def test_min_max_zero_mean_unit_direction(mols_assignment):
    honest = np.zeros((mols_assignment.num_files, DIM))
    context = AttackContext(
        assignment=mols_assignment,
        byzantine_workers=(0,),
        honest_file_gradients={i: honest[i] for i in range(honest.shape[0])},
        honest_matrix=honest,
    )
    attack = MinMaxAttack(direction="unit")
    attack.prepare(context)  # must not divide by zero
    assert np.all(np.isfinite(attack.craft(context, 0, 0)))


def test_optimized_deviation_validation():
    with pytest.raises(AttackError):
        MinMaxAttack(direction="sideways")
    with pytest.raises(AttackError):
        MinSumAttack(gamma_init=-1.0)
    with pytest.raises(AttackError):
        MinSumAttack(num_steps=0)


# --------------------------------------------------------------------------- #
# Dict adapter vs apply_tensor bit-identity — every new family
# --------------------------------------------------------------------------- #
NEW_FAMILIES = [
    ("inner_product", {}),
    ("sign_flip", {}),
    ("fang", {"defense": "median"}),
    ("fang", {"defense": "trimmed_mean"}),
    ("fang", {"defense": "mean"}),
    ("fang", {"defense": "krum"}),
    ("min_max", {"direction": "unit"}),
    ("min_max", {"direction": "sign"}),
    ("min_sum", {"direction": "std"}),
]


@pytest.mark.parametrize("name,params", NEW_FAMILIES)
def test_dict_adapter_matches_apply_tensor(mols_assignment, name, params):
    byzantine = (0, 3, 7, 11)
    honest = np.random.default_rng(13).standard_normal(
        (mols_assignment.num_files, DIM)
    )
    grads = {i: honest[i] for i in range(honest.shape[0])}

    def context():
        return AttackContext(
            assignment=mols_assignment,
            byzantine_workers=byzantine,
            honest_file_gradients=grads,
            iteration=1,
            rng=np.random.default_rng(21),
            honest_matrix=honest,
        )

    tensor_path = VoteTensor.from_honest(mols_assignment, honest)
    dict_path = VoteTensor.from_honest(mols_assignment, honest)
    tensor_path.mark_byzantine(byzantine)
    dict_path.mark_byzantine(byzantine)
    create_attack(name, **params).apply_tensor(context(), tensor_path)
    for (worker, file), payload in create_attack(name, **params).apply(context()).items():
        dict_path.set_vote(file, worker, payload)
    assert tensor_path.is_lazy  # vectorized writes must never densify
    every_file = np.arange(mols_assignment.num_files)
    assert np.array_equal(
        tensor_path.materialize_files(every_file),
        dict_path.materialize_files(every_file),
    )


# --------------------------------------------------------------------------- #
# Registry contract
# --------------------------------------------------------------------------- #
def test_available_attacks_sorted_and_complete():
    names = available_attacks()
    assert names == sorted(names)
    for expected in ("inner_product", "sign_flip", "fang", "min_max", "min_sum"):
        assert expected in names


def test_register_attack_rejects_silent_overwrite():
    class Impostor(Attack):
        def craft(self, context, worker, file):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(ConfigurationError, match="overwrite=True"):
        register_attack("alie", Impostor)
    # The registry still resolves the original class.
    from repro.attacks.alie import ALIEAttack

    assert type(create_attack("alie")) is ALIEAttack


def test_register_attack_overwrite_flag_and_subclass_check():
    class Custom(Attack):
        def craft(self, context, worker, file):  # pragma: no cover
            raise NotImplementedError

    register_attack("zoo_test_custom", Custom)
    try:
        with pytest.raises(ConfigurationError):
            register_attack("zoo_test_custom", Custom)
        register_attack("zoo_test_custom", Custom, overwrite=True)
        assert "zoo_test_custom" in available_attacks()
        with pytest.raises(ConfigurationError):
            register_attack("zoo_test_other", int)
    finally:
        from repro.attacks import registry

        registry._REGISTRY.pop("zoo_test_custom", None)
