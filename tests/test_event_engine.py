"""Event-driven round engine: arrival schedules, deadline/quorum, equivalence."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.frc import FRCAssignment
from repro.attacks.constant import ConstantAttack
from repro.attacks.selection import FixedSelector
from repro.cluster.events import (
    LATE_KIND,
    AsyncRuntime,
    EventDrivenRound,
    base_arrival_times,
    perturbed_arrival_times,
)
from repro.cluster.faults import (
    DropoutInjector,
    MessageCorruptionInjector,
    StragglerInjector,
    round_duration,
)
from repro.cluster.simulator import TrainingCluster
from repro.cluster.timing import CostModel
from repro.cluster.worker import WorkerPool
from repro.core.pipelines import ByzShieldPipeline, VanillaPipeline
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import AggregationError, ConfigurationError, TrainingError
from repro.scenarios.catalog import get_scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import RuntimeSpec

from test_cluster import DIM, make_file_data, quadratic_gradient_fn

COST = CostModel()


@pytest.fixture(scope="module")
def frc_3():
    """Smallest non-trivial event-loop substrate: one file, three slots."""
    return FRCAssignment(num_workers=3, replication=3).assignment


def one_file_tensor(assignment, dim=4):
    """A (1, 3, dim) tensor whose slot k holds the constant vector k + 1."""
    tensor = VoteTensor.from_honest(assignment, np.ones((1, dim)))
    for k in range(3):
        tensor.write_slots(
            np.array([0]), np.array([k]), np.full(dim, float(k + 1))
        )
    return tensor


def collect(tensor, arrivals, **runtime_kwargs):
    runtime = AsyncRuntime(**runtime_kwargs)
    return EventDrivenRound(runtime).collect(
        tensor, np.asarray(arrivals, dtype=np.float64)
    )


# --------------------------------------------------------------------------- #
# AsyncRuntime validation
# --------------------------------------------------------------------------- #
class TestAsyncRuntime:
    def test_defaults_are_sync_equivalent(self):
        runtime = AsyncRuntime()
        assert runtime.deadline == float("inf")
        assert runtime.quorum is None
        assert not runtime.partial

    @pytest.mark.parametrize("deadline", [0.0, -1.0, float("nan")])
    def test_rejects_non_positive_deadline(self, deadline):
        with pytest.raises(ConfigurationError):
            AsyncRuntime(deadline=deadline)

    def test_rejects_quorum_below_one(self):
        with pytest.raises(ConfigurationError):
            AsyncRuntime(quorum=0)

    def test_quorum_above_replication_rejected_by_engine(self, frc_3):
        tensor = one_file_tensor(frc_3)
        with pytest.raises(ConfigurationError):
            collect(tensor, [[0.1, 0.2, 0.3]], quorum=4)


# --------------------------------------------------------------------------- #
# Arrival schedules
# --------------------------------------------------------------------------- #
class TestBaseArrivalTimes:
    def test_single_file_workers(self, baseline_10):
        """r=1, one file per worker: compute + one message cost, exactly."""
        assignment = baseline_10.assignment
        samples = np.arange(1, assignment.num_files + 1, dtype=np.float64)
        dim = 50
        arrivals = base_arrival_times(assignment, COST, dim, samples)
        assert arrivals.shape == (assignment.num_files, 1)
        per_message = dim * COST.network_per_float + COST.network_latency_per_message
        for w in range(assignment.num_workers):
            (i,) = baseline_10.assignment.files_of_worker(w)
            expected = (
                samples[i] * dim * COST.compute_per_sample_per_param + per_message
            )
            assert arrivals[i, 0] == pytest.approx(expected)

    def test_serialized_uplink_orders_a_workers_messages(self, mols_assignment):
        """Worker w's rank-th file arrives (rank+1) message-costs after compute."""
        dim = 10
        samples = np.full(mols_assignment.num_files, 3.0)
        arrivals = base_arrival_times(mols_assignment, COST, dim, samples)
        workers = mols_assignment.worker_slot_matrix()
        per_message = dim * COST.network_per_float + COST.network_latency_per_message
        w = 0
        files = mols_assignment.files_of_worker(w)
        compute = samples[list(files)].sum() * dim * COST.compute_per_sample_per_param
        for rank, i in enumerate(files):
            k = int(np.searchsorted(workers[i], w))
            assert arrivals[i, k] == pytest.approx(compute + (rank + 1) * per_message)

    def test_rejects_wrong_samples_shape(self, mols_assignment):
        with pytest.raises(ConfigurationError):
            base_arrival_times(
                mols_assignment, COST, 10, np.ones(mols_assignment.num_files - 1)
            )


class TestPerturbedArrivalTimes:
    def test_delay_shift_and_crash(self, mols_assignment):
        base = base_arrival_times(
            mols_assignment, COST, 10, np.full(mols_assignment.num_files, 2.0)
        )
        workers = mols_assignment.worker_slot_matrix()
        perturbed = perturbed_arrival_times(base, workers, {3: 0.5}, {7})
        np.testing.assert_allclose(
            perturbed[workers == 3], base[workers == 3] + 0.5
        )
        assert np.all(np.isinf(perturbed[workers == 7]))
        untouched = ~np.isin(workers, (3, 7))
        np.testing.assert_array_equal(perturbed[untouched], base[untouched])
        # The base schedule is never mutated.
        assert np.all(np.isfinite(base))


# --------------------------------------------------------------------------- #
# The PS-side event loop
# --------------------------------------------------------------------------- #
class TestEventLoop:
    def test_inf_deadline_accepts_everything(self, frc_3):
        tensor = one_file_tensor(frc_3)
        before = tensor.values.copy()
        outcome = collect(tensor, [[0.1, 0.5, 0.3]])
        assert outcome.accepted.all()
        assert outcome.late_events == ()
        assert not outcome.deadline_fired
        # Implicit quorum r: the file closes at its last arrival.
        assert outcome.round_time == 0.5
        assert outcome.file_close_times[0] == 0.5
        np.testing.assert_array_equal(tensor.values, before)

    def test_deadline_is_exclusive(self, frc_3):
        """An arrival at exactly the deadline is late (straggler convention)."""
        tensor = one_file_tensor(frc_3)
        outcome = collect(tensor, [[0.1, 0.5, 1.0]], deadline=0.5)
        np.testing.assert_array_equal(outcome.accepted, [[True, False, False]])
        assert [e.slot for e in outcome.late_events] == [1, 2]
        assert outcome.deadline_fired
        # File never closed, so the deadline is the round clock.
        assert outcome.round_time == 0.5

    def test_late_slots_are_zeroed_like_timed_out_stragglers(self, frc_3):
        tensor = one_file_tensor(frc_3)
        collect(tensor, [[0.1, 0.5, 1.0]], deadline=0.5)
        np.testing.assert_array_equal(tensor.values[0, 0], np.full(4, 1.0))
        np.testing.assert_array_equal(tensor.values[0, 1], np.zeros(4))
        np.testing.assert_array_equal(tensor.values[0, 2], np.zeros(4))

    def test_late_event_contents(self, frc_3):
        tensor = one_file_tensor(frc_3)
        outcome = collect(tensor, [[0.1, 0.2, 0.9]], deadline=0.5)
        (event,) = outcome.late_events
        assert event.kind == LATE_KIND
        assert event.worker == int(frc_3.worker_slot_matrix()[0, 2])
        assert event.file == 0
        assert event.slot == 2
        assert event.delay == 0.9
        assert event.dropped
        # Unlike legacy kinds, late events serialize their slot.
        assert event.as_dict()["slot"] == 2

    def test_quorum_closes_file_and_sets_round_time(self, frc_3):
        tensor = one_file_tensor(frc_3)
        outcome = collect(tensor, [[0.1, 0.2, 0.3]], quorum=2)
        np.testing.assert_array_equal(outcome.accepted, [[True, True, False]])
        assert outcome.file_close_times[0] == 0.2
        assert outcome.round_time == 0.2
        assert not outcome.deadline_fired
        (event,) = outcome.late_events
        assert event.slot == 2 and event.delay == 0.3
        np.testing.assert_array_equal(tensor.values[0, 2], np.zeros(4))

    def test_simultaneous_arrivals_break_ties_row_major(self, frc_3):
        tensor = one_file_tensor(frc_3)
        outcome = collect(tensor, [[0.1, 0.1, 0.1]], quorum=2)
        np.testing.assert_array_equal(outcome.accepted, [[True, True, False]])
        assert [e.slot for e in outcome.late_events] == [2]

    def test_never_sent_slots_are_left_alone(self, frc_3):
        """inf arrivals are the injectors' business: not accepted, not zeroed."""
        tensor = one_file_tensor(frc_3)
        outcome = collect(tensor, [[0.1, 0.2, np.inf]])
        np.testing.assert_array_equal(outcome.accepted, [[True, True, False]])
        assert outcome.late_events == ()
        # Slot 2 keeps whatever the fault pass wrote there (here: 3.0).
        np.testing.assert_array_equal(tensor.values[0, 2], np.full(4, 3.0))

    def test_inf_deadline_with_missing_message_closes_at_stream_end(self, frc_3):
        tensor = one_file_tensor(frc_3)
        outcome = collect(tensor, [[0.1, 0.7, np.inf]])
        assert outcome.round_time == 0.7
        assert np.isinf(outcome.file_close_times[0])
        assert not outcome.deadline_fired

    def test_finite_deadline_with_missing_message_fires_deadline(self, frc_3):
        tensor = one_file_tensor(frc_3)
        outcome = collect(tensor, [[0.1, 0.2, np.inf]], deadline=5.0)
        assert outcome.round_time == 5.0
        assert outcome.deadline_fired
        assert outcome.late_events == ()

    def test_empty_stream_round_time_zero(self, frc_3):
        tensor = one_file_tensor(frc_3)
        outcome = collect(tensor, [[np.inf, np.inf, np.inf]])
        assert outcome.round_time == 0.0
        assert outcome.num_accepted == 0

    def test_rejects_wrong_arrival_shape(self, frc_3):
        tensor = one_file_tensor(frc_3)
        with pytest.raises(ConfigurationError):
            collect(tensor, [[0.1, 0.2]])


# --------------------------------------------------------------------------- #
# Partial aggregation over the accepted mask
# --------------------------------------------------------------------------- #
class TestPartialAggregation:
    def test_masked_vote_ignores_unarrived_majority(self, frc_3):
        """Two unarrived bad copies must not outvote the one accepted copy."""
        tensor = VoteTensor.from_honest(frc_3, np.ones((1, 4)))
        bad = np.full(4, 9.0)
        tensor.write_slots(np.array([0, 0]), np.array([0, 1]), bad)
        pipeline = ByzShieldPipeline(frc_3)
        full = pipeline.post_vote_matrix(tensor)
        np.testing.assert_array_equal(full[0], bad)
        arrived = np.array([[False, False, True]])
        masked = pipeline.post_vote_matrix(tensor, arrived)
        np.testing.assert_array_equal(masked[0], np.ones(4))

    def test_all_true_mask_matches_unmasked(self, mols_assignment, rng):
        tensor = VoteTensor.from_honest(
            mols_assignment, rng.standard_normal((mols_assignment.num_files, 5))
        )
        pipeline = ByzShieldPipeline(mols_assignment)
        arrived = np.ones(tensor.workers.shape, dtype=bool)
        np.testing.assert_array_equal(
            pipeline.aggregate_tensor(tensor, arrived),
            pipeline.aggregate_tensor(tensor),
        )

    def test_zero_arrival_file_votes_zero(self, frc_3):
        tensor = one_file_tensor(frc_3)
        pipeline = ByzShieldPipeline(frc_3)
        winners = pipeline.post_vote_matrix(
            tensor, np.zeros((1, 3), dtype=bool)
        )
        np.testing.assert_array_equal(winners, np.zeros((1, 4)))

    def test_vanilla_drops_unarrived_rows(self, baseline_10):
        assignment = baseline_10.assignment
        tensor = VoteTensor.from_honest(
            assignment, np.arange(assignment.num_files, dtype=np.float64)[:, None]
            + np.zeros(3)
        )
        pipeline = VanillaPipeline(assignment, CoordinateWiseMedian())
        arrived = np.ones((assignment.num_files, 1), dtype=bool)
        arrived[::2] = False
        rows = pipeline.post_vote_matrix(tensor, arrived)
        assert rows.shape == (assignment.num_files // 2, 3)
        np.testing.assert_array_equal(rows[:, 0], np.arange(1, 10, 2))

    def test_vanilla_no_survivors_aggregates_zero(self, baseline_10):
        assignment = baseline_10.assignment
        tensor = VoteTensor.from_honest(
            assignment, np.ones((assignment.num_files, 3))
        )
        pipeline = VanillaPipeline(assignment, CoordinateWiseMedian())
        aggregate = pipeline.aggregate_tensor(
            tensor, np.zeros((assignment.num_files, 1), dtype=bool)
        )
        np.testing.assert_array_equal(aggregate, np.zeros(3))

    def test_rejects_bad_mask_shape(self, frc_3):
        tensor = one_file_tensor(frc_3)
        pipeline = ByzShieldPipeline(frc_3)
        with pytest.raises(AggregationError):
            pipeline.aggregate_tensor(tensor, np.ones((2, 3), dtype=bool))


# --------------------------------------------------------------------------- #
# Cluster integration: sync path vs event path
# --------------------------------------------------------------------------- #
def make_cluster(assignment, runtime=None, injectors=(), seed=0):
    return TrainingCluster(
        assignment=assignment,
        worker_pool=WorkerPool(assignment, quadratic_gradient_fn),
        attack=ConstantAttack(),
        selector=FixedSelector((0, 5)),
        seed=seed,
        fault_injectors=injectors,
        runtime=runtime,
    )


ALL_INJECTORS = lambda: (  # noqa: E731 - fresh (stateful) injectors per call
    StragglerInjector(count=3, delay_model="exponential", delay=0.5, timeout=1.0),
    DropoutInjector(probability=0.1, down_for=2),
    MessageCorruptionInjector(probability=0.05, mode="noise", factor=1.0),
)


class TestClusterEventRound:
    def test_inf_deadline_bit_identical_to_sync(self, mols_assignment):
        sync = make_cluster(mols_assignment, injectors=ALL_INJECTORS())
        event = make_cluster(
            mols_assignment, runtime=AsyncRuntime(), injectors=ALL_INJECTORS()
        )
        params = np.ones(DIM)
        for iteration in range(5):
            data = make_file_data(mols_assignment.num_files, seed=iteration)
            a = sync.run_round_tensor(params, data, iteration)
            b = event.run_round_tensor(params, data, iteration)
            np.testing.assert_array_equal(
                a.vote_tensor.values, b.vote_tensor.values
            )
            assert a.fault_events == b.fault_events
            assert b.aggregation_mask is None

    def test_sync_and_event_clocks_differ_as_designed(self, mols_assignment):
        """Legacy sync time is max(delay)+base; the event path reads the engine."""
        injectors = (
            StragglerInjector(count=3, delay_model="fixed", delay=0.7),
        )
        sync = make_cluster(mols_assignment, injectors=injectors)
        event = make_cluster(
            mols_assignment, runtime=AsyncRuntime(), injectors=injectors
        )
        data = make_file_data(mols_assignment.num_files)
        a = sync.run_round_tensor(np.ones(DIM), data, 0)
        b = event.run_round_tensor(np.ones(DIM), data, 0)
        assert a.round_time == round_duration(list(a.fault_events)) == 0.7
        # The engine clock is the last arrival: straggler delay plus the
        # worker's compute + serialized-uplink schedule, so strictly later.
        assert b.round_time > 0.7
        base = base_arrival_times(
            mols_assignment,
            AsyncRuntime().cost_model,
            DIM,
            np.full(mols_assignment.num_files, 2.0),
        )
        assert b.round_time <= 0.7 + base.max() + 1e-12

    def test_quorum_partial_round(self, mols_assignment):
        runtime = AsyncRuntime(quorum=2, partial=True)
        cluster = make_cluster(mols_assignment, runtime=runtime)
        result = cluster.run_round_tensor(
            np.ones(DIM), make_file_data(mols_assignment.num_files), 0
        )
        assert result.accepted.sum(axis=1).max() <= 2
        np.testing.assert_array_equal(result.aggregation_mask, result.accepted)
        late = [e for e in result.fault_events if e.kind == LATE_KIND]
        assert late and all(e.dropped and e.slot >= 0 for e in late)
        # Every late slot was zeroed on the tensor.
        for e in late:
            np.testing.assert_array_equal(
                result.vote_tensor.values[e.file, e.slot], np.zeros(DIM)
            )

    def test_legacy_round_path_rejects_runtime(self, mols_assignment):
        cluster = make_cluster(mols_assignment, runtime=AsyncRuntime())
        with pytest.raises(TrainingError):
            cluster.run_round(np.ones(DIM), make_file_data(25), 0)

    def test_quorum_above_replication_rejected(self, mols_assignment):
        with pytest.raises(TrainingError):
            make_cluster(mols_assignment, runtime=AsyncRuntime(quorum=4))


# --------------------------------------------------------------------------- #
# Scenario-level sync equivalence property: deadline=inf replays the
# synchronous trace bit-exactly on every stage except the round clock.
# --------------------------------------------------------------------------- #
EQUIVALENCE_SCENARIOS = [
    "mols-alie-all-faults",          # byzshield x alie x all three injectors
    "mols-alie-straggler-timeout",   # byzshield x alie x timeout-dropped stragglers
    "mols-corruption-zero",          # byzshield x corruption, no attack
    "detox-multikrum-revgrad-dropout",  # detox x revgrad x dropout churn
    "draco-clean-stragglers",        # draco, faults only
    "vanilla-multikrum-revgrad-dropout",  # vanilla x revgrad x dropout
]


@pytest.mark.parametrize("name", EQUIVALENCE_SCENARIOS)
def test_scenario_inf_deadline_matches_sync_trace(name):
    spec = get_scenario(name)
    assert not spec.runtime.is_event
    event_spec = dataclasses.replace(
        spec, runtime=RuntimeSpec(deadline=float("inf"))
    )
    sync = run_scenario(spec)
    event = run_scenario(event_spec)
    assert len(sync.trace.rounds) == len(event.trace.rounds)
    for a, b in zip(sync.trace.rounds, event.trace.rounds):
        assert a.votes_digest == b.votes_digest
        assert a.winners_digest == b.winners_digest
        assert a.aggregate_digest == b.aggregate_digest
        assert a.params_digest == b.params_digest
        assert a.mean_loss_hex == b.mean_loss_hex
        assert a.faults == b.faults  # in particular: no late events
        assert a.q == b.q and a.byzantine == b.byzantine
        assert a.num_distorted == b.num_distorted
    assert sync.trace.final_params_digest == event.trace.final_params_digest
    assert sync.trace.final_accuracy_hex == event.trace.final_accuracy_hex
