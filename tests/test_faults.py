"""Fault injectors: stragglers, dropout/churn, message corruption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.faults import (
    DropoutInjector,
    FaultContext,
    FaultEvent,
    MessageCorruptionInjector,
    StragglerInjector,
    round_duration,
)
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import ConfigurationError


@pytest.fixture
def tensor(mols_assignment):
    honest = np.arange(mols_assignment.num_files, dtype=np.float64)[:, None] + np.ones(4)
    return VoteTensor.from_honest(mols_assignment, honest)


def make_context(assignment, seed=0, iteration=0):
    return FaultContext(
        assignment=assignment, iteration=iteration, rng=np.random.default_rng(seed)
    )


class TestStragglers:
    def test_no_timeout_only_delays(self, tensor, mols_assignment):
        before = tensor.values.copy()
        injector = StragglerInjector(count=3, delay_model="exponential", delay=0.5)
        events = injector.inject(tensor, make_context(mols_assignment))
        assert len(events) == 3
        assert all(e.delay > 0 and not e.dropped for e in events)
        np.testing.assert_array_equal(tensor.values, before)
        assert round_duration(events) == max(e.delay for e in events)

    def test_timeout_drops_votes_and_clamps_delay(self, tensor, mols_assignment):
        injector = StragglerInjector(
            count=5, delay_model="fixed", delay=2.0, timeout=1.0
        )
        events = injector.inject(tensor, make_context(mols_assignment))
        assert all(e.dropped and e.delay == 1.0 for e in events)
        for event in events:
            mask = tensor.workers == event.worker
            assert np.all(tensor.values[mask] == 0.0)
        # Untouched workers keep their honest votes.
        untouched = ~np.isin(tensor.workers, [e.worker for e in events])
        assert np.all(tensor.values[untouched] != 0.0)

    def test_timeout_boundary_is_exclusive(self, tensor, mols_assignment):
        """A delay exactly equal to the timeout is abandoned (delay >= timeout)."""
        injector = StragglerInjector(
            count=3, delay_model="fixed", delay=1.0, timeout=1.0
        )
        events = injector.inject(tensor, make_context(mols_assignment))
        assert all(e.dropped and e.delay == 1.0 for e in events)
        for event in events:
            assert np.all(tensor.values[tensor.workers == event.worker] == 0.0)

    def test_delay_just_under_timeout_survives(self, tensor, mols_assignment):
        before = tensor.values.copy()
        injector = StragglerInjector(
            count=3, delay_model="fixed", delay=1.0, timeout=1.0 + 1e-9
        )
        events = injector.inject(tensor, make_context(mols_assignment))
        assert all(not e.dropped and e.delay == 1.0 for e in events)
        np.testing.assert_array_equal(tensor.values, before)

    def test_count_clamped_to_cluster_size(self, tensor, mols_assignment):
        injector = StragglerInjector(count=99, delay_model="fixed", delay=0.5)
        events = injector.inject(tensor, make_context(mols_assignment))
        assert len(events) == mols_assignment.num_workers

    def test_deterministic_per_rng(self, tensor, mols_assignment):
        injector = StragglerInjector(count=3, delay_model="exponential", delay=0.5)
        one = injector.inject(tensor, make_context(mols_assignment, seed=9))
        two = injector.inject(tensor, make_context(mols_assignment, seed=9))
        assert one == two

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StragglerInjector(count=-1)
        with pytest.raises(ConfigurationError):
            StragglerInjector(count=1, delay_model="psychic")
        with pytest.raises(ConfigurationError):
            StragglerInjector(count=1, delay=0.0)
        with pytest.raises(ConfigurationError):
            StragglerInjector(count=1, timeout=-2.0)


class TestDropout:
    def test_downed_worker_loses_all_votes(self, tensor, mols_assignment):
        injector = DropoutInjector(probability=1.0)
        events = injector.inject(tensor, make_context(mols_assignment))
        assert len(events) == mols_assignment.num_workers
        assert np.all(tensor.values == 0.0)

    def test_churn_keeps_worker_down_for_down_for_rounds(self, mols_assignment):
        injector = DropoutInjector(probability=1.0, down_for=2)
        honest = np.ones((mols_assignment.num_files, 2))
        t0 = VoteTensor.from_honest(mols_assignment, honest)
        injector.inject(t0, make_context(mols_assignment, iteration=0))
        # Round 1: probability no longer matters — everyone is already down.
        injector.probability = 0.0
        t1 = VoteTensor.from_honest(mols_assignment, honest)
        events1 = injector.inject(t1, make_context(mols_assignment, iteration=1))
        assert len(events1) == mols_assignment.num_workers
        assert np.all(t1.values == 0.0)
        # Round 2: everyone has rejoined.
        t2 = VoteTensor.from_honest(mols_assignment, honest)
        events2 = injector.inject(t2, make_context(mols_assignment, iteration=2))
        assert events2 == []
        assert np.all(t2.values == 1.0)

    @pytest.mark.parametrize("down_for", [1, 2, 3])
    def test_rejoin_after_exactly_down_for_rounds(self, mols_assignment, down_for):
        injector = DropoutInjector(probability=1.0, down_for=down_for)
        honest = np.ones((mols_assignment.num_files, 2))
        t0 = VoteTensor.from_honest(mols_assignment, honest)
        events = injector.inject(t0, make_context(mols_assignment, iteration=0))
        assert len(events) == mols_assignment.num_workers
        injector.probability = 0.0
        for iteration in range(1, down_for):
            t = VoteTensor.from_honest(mols_assignment, honest)
            events = injector.inject(
                t, make_context(mols_assignment, iteration=iteration)
            )
            assert len(events) == mols_assignment.num_workers
            assert np.all(t.values == 0.0)
        t = VoteTensor.from_honest(mols_assignment, honest)
        events = injector.inject(
            t, make_context(mols_assignment, iteration=down_for)
        )
        assert events == []
        assert np.all(t.values == 1.0)

    def test_crash_draw_while_down_does_not_rearm_timer(self, mols_assignment):
        """A worker that would re-crash while already down rejoins on schedule."""
        injector = DropoutInjector(probability=1.0, down_for=2)
        honest = np.ones((mols_assignment.num_files, 2))
        t0 = VoteTensor.from_honest(mols_assignment, honest)
        injector.inject(t0, make_context(mols_assignment, iteration=0))
        # Round 1: probability is still 1.0, so every downed worker draws a
        # would-be crash — which must not restart its down timer.
        t1 = VoteTensor.from_honest(mols_assignment, honest)
        events1 = injector.inject(t1, make_context(mols_assignment, iteration=1))
        assert len(events1) == mols_assignment.num_workers
        injector.probability = 0.0
        t2 = VoteTensor.from_honest(mols_assignment, honest)
        events2 = injector.inject(t2, make_context(mols_assignment, iteration=2))
        assert events2 == []
        assert np.all(t2.values == 1.0)

    def test_reset_clears_churn_state(self, tensor, mols_assignment):
        injector = DropoutInjector(probability=1.0, down_for=5)
        injector.inject(tensor, make_context(mols_assignment))
        injector.reset()
        injector.probability = 0.0
        fresh = VoteTensor.from_honest(
            mols_assignment, np.ones((mols_assignment.num_files, 2))
        )
        assert injector.inject(fresh, make_context(mols_assignment)) == []

    def test_rng_consumption_independent_of_history(self, mols_assignment):
        """The draw sequence depends only on (seed, K), not on who is down."""
        honest = np.ones((mols_assignment.num_files, 2))
        a = DropoutInjector(probability=0.3)
        b = DropoutInjector(probability=0.3, down_for=3)
        for iteration in range(4):
            ta = VoteTensor.from_honest(mols_assignment, honest)
            tb = VoteTensor.from_honest(mols_assignment, honest)
            ea = a.inject(ta, make_context(mols_assignment, seed=iteration))
            eb = b.inject(tb, make_context(mols_assignment, seed=iteration))
            # Identical per-round draws: every worker a crashes also goes (or
            # already is) down for b, despite b's different churn history.
            assert {e.worker for e in ea} <= {e.worker for e in eb}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DropoutInjector(probability=1.5)
        with pytest.raises(ConfigurationError):
            DropoutInjector(probability=0.5, down_for=0)


class TestCorruption:
    def test_zero_mode(self, tensor, mols_assignment):
        injector = MessageCorruptionInjector(probability=1.0, mode="zero")
        events = injector.inject(tensor, make_context(mols_assignment))
        assert np.all(tensor.values == 0.0)
        assert len(events) == tensor.num_files * tensor.replication

    def test_scale_mode(self, tensor, mols_assignment):
        before = tensor.values.copy()
        injector = MessageCorruptionInjector(probability=1.0, mode="scale", factor=10.0)
        injector.inject(tensor, make_context(mols_assignment))
        np.testing.assert_allclose(tensor.values, before * 10.0)

    def test_noise_mode_changes_only_hit_messages(self, tensor, mols_assignment):
        before = tensor.values.copy()
        injector = MessageCorruptionInjector(probability=0.2, mode="noise", factor=1.0)
        events = injector.inject(tensor, make_context(mols_assignment))
        changed = {(e.file, tensor.slot_of(e.file, e.worker)) for e in events}
        for i in range(tensor.num_files):
            for k in range(tensor.replication):
                same = np.array_equal(tensor.values[i, k], before[i, k])
                assert same != ((i, k) in changed)

    def test_zero_probability_is_a_noop(self, tensor, mols_assignment):
        before = tensor.values.copy()
        injector = MessageCorruptionInjector(probability=0.0)
        assert injector.inject(tensor, make_context(mols_assignment)) == []
        np.testing.assert_array_equal(tensor.values, before)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MessageCorruptionInjector(probability=-0.1)
        with pytest.raises(ConfigurationError):
            MessageCorruptionInjector(probability=0.5, mode="garble")
        with pytest.raises(ConfigurationError):
            MessageCorruptionInjector(probability=0.5, factor=float("inf"))


class TestRngConsumptionInvariance:
    """Injector draws are a pure function of (seed, round, tensor shape).

    Neither the tensor's contents nor its copy-on-write override layout may
    influence how much randomness an injector consumes, or which cells it
    targets — otherwise an attack edit (or an earlier injector) would silently
    change a later injector's realized faults.
    """

    FACTORIES = {
        "stragglers": lambda: StragglerInjector(
            count=4, delay_model="exponential", delay=0.5, timeout=0.6
        ),
        "dropout": lambda: DropoutInjector(probability=0.4, down_for=2),
        "corruption": lambda: MessageCorruptionInjector(
            probability=0.3, mode="noise", factor=2.0
        ),
    }

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_draws_independent_of_cow_override_layout(self, mols_assignment, name):
        honest = np.ones((mols_assignment.num_files, 4))
        clean = VoteTensor.from_honest(mols_assignment, honest)
        messy = VoteTensor.from_honest(mols_assignment, honest)
        # Give messy a very different override layout: payload writes on two
        # workers' slots plus a band of zeroed slots.
        files, slots = np.nonzero(np.isin(messy.workers, (1, 8)))
        messy.write_slots(files, slots, np.full(4, 7.0))
        messy.zero_slots(np.arange(5), np.zeros(5, dtype=np.int64))
        rng_a, rng_b = np.random.default_rng(42), np.random.default_rng(42)
        factory = self.FACTORIES[name]
        events_a = factory().inject(
            clean,
            FaultContext(assignment=mols_assignment, iteration=0, rng=rng_a),
        )
        events_b = factory().inject(
            messy,
            FaultContext(assignment=mols_assignment, iteration=0, rng=rng_b),
        )
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
        assert [(e.kind, e.worker, e.file, e.dropped) for e in events_a] == [
            (e.kind, e.worker, e.file, e.dropped) for e in events_b
        ]

    def test_dropout_draws_independent_of_churn_history(self, mols_assignment):
        """Same per-round rng state consumed whatever the realized downtime."""
        honest = np.ones((mols_assignment.num_files, 2))
        short = DropoutInjector(probability=0.5, down_for=1)
        long = DropoutInjector(probability=0.5, down_for=3)
        for iteration in range(5):
            rng_a = np.random.default_rng(iteration)
            rng_b = np.random.default_rng(iteration)
            short.inject(
                VoteTensor.from_honest(mols_assignment, honest),
                FaultContext(
                    assignment=mols_assignment, iteration=iteration, rng=rng_a
                ),
            )
            long.inject(
                VoteTensor.from_honest(mols_assignment, honest),
                FaultContext(
                    assignment=mols_assignment, iteration=iteration, rng=rng_b
                ),
            )
            assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestRoundDuration:
    def test_legacy_sync_clock_is_base_plus_max_delay(self):
        events = [
            FaultEvent(kind="straggler", worker=0, delay=0.3),
            FaultEvent(kind="straggler", worker=1, delay=0.7, dropped=True),
        ]
        assert round_duration(events) == 0.7
        assert round_duration(events, base=0.5) == 1.2

    def test_no_events_is_just_the_base(self):
        assert round_duration([]) == 0.0
        assert round_duration([], base=0.25) == 0.25
