"""Tests for training checkpointing."""

import numpy as np
import pytest

from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.mols import MOLSAssignment
from repro.cluster.server import ParameterServer
from repro.core.pipelines import ByzShieldPipeline
from repro.exceptions import TrainingError
from repro.nn.optim import SGD
from repro.training.checkpoint import (
    load_checkpoint,
    restore_history,
    restore_server,
    save_checkpoint,
)
from repro.training.history import IterationRecord, TrainingHistory


def make_server(dim=40, momentum=0.9):
    assignment = MOLSAssignment(load=5, replication=3).assignment
    pipeline = ByzShieldPipeline(assignment, aggregator=CoordinateWiseMedian())
    return ParameterServer(np.linspace(0, 1, dim), pipeline, SGD(0.1, momentum=momentum))


def make_history():
    history = TrainingHistory(label="demo")
    history.append(IterationRecord(0, 1.0, 0.04, test_accuracy=0.5, test_loss=1.2, learning_rate=0.1))
    history.append(IterationRecord(1, 0.8, 0.04, learning_rate=0.1))
    return history


def step_server(server, steps=3):
    rng = np.random.default_rng(0)
    for _ in range(steps):
        gradient = rng.standard_normal(server.params.size)
        server._params = server.optimizer.step_vector(server._params, gradient)
        server.iteration += 1


def test_checkpoint_roundtrip(tmp_path):
    server = make_server()
    step_server(server)
    history = make_history()
    path = save_checkpoint(tmp_path / "ckpt", server, history)
    assert path.suffix == ".npz"
    assert path.exists() and path.with_suffix(".json").exists()

    restored_server = make_server()
    checkpoint = load_checkpoint(path)
    restore_server(restored_server, checkpoint)
    assert np.allclose(restored_server.params, server.params)
    assert restored_server.iteration == server.iteration
    assert restored_server.optimizer.iteration == server.optimizer.iteration
    assert np.allclose(restored_server.optimizer._velocity, server.optimizer._velocity)

    restored_history = restore_history(checkpoint)
    assert restored_history.label == "demo"
    assert len(restored_history) == 2
    assert restored_history.records[0].test_accuracy == pytest.approx(0.5)
    assert np.isnan(restored_history.records[1].test_accuracy)


def test_checkpoint_without_history_or_momentum(tmp_path):
    server = make_server(momentum=0.0)
    step_server(server, steps=1)
    path = save_checkpoint(tmp_path / "plain.npz", server)
    checkpoint = load_checkpoint(path)
    restored = make_server(momentum=0.0)
    restore_server(restored, checkpoint)
    assert np.allclose(restored.params, server.params)
    assert restored.optimizer._velocity is None
    assert len(restore_history(checkpoint)) == 0


def test_restored_training_continues_identically(tmp_path):
    """Stepping a restored server gives the same trajectory as never stopping."""
    gradients = np.random.default_rng(7).standard_normal((4, 40))

    continuous = make_server()
    for gradient in gradients[:2]:
        continuous._params = continuous.optimizer.step_vector(continuous._params, gradient)
        continuous.iteration += 1
    path = save_checkpoint(tmp_path / "mid", continuous)
    for gradient in gradients[2:]:
        continuous._params = continuous.optimizer.step_vector(continuous._params, gradient)
        continuous.iteration += 1

    resumed = make_server()
    restore_server(resumed, load_checkpoint(path))
    for gradient in gradients[2:]:
        resumed._params = resumed.optimizer.step_vector(resumed._params, gradient)
        resumed.iteration += 1
    assert np.allclose(resumed.params, continuous.params)
    assert resumed.iteration == continuous.iteration


def test_checkpoint_error_paths(tmp_path):
    with pytest.raises(TrainingError):
        load_checkpoint(tmp_path / "missing.npz")
    server = make_server()
    path = save_checkpoint(tmp_path / "ok", server)
    path.with_suffix(".json").unlink()
    with pytest.raises(TrainingError):
        load_checkpoint(path)

    other_dim = make_server(dim=13)
    fresh = save_checkpoint(tmp_path / "dim", other_dim)
    with pytest.raises(TrainingError):
        restore_server(make_server(dim=40), load_checkpoint(fresh))
