"""Tests for the Ramanujan-bigraph assignment scheme."""

import numpy as np
import pytest

from repro.assignment.ramanujan import (
    RamanujanAssignment,
    cyclic_shift_matrix,
    ramanujan_biadjacency,
)
from repro.exceptions import ConfigurationError


def test_cyclic_shift_matrix_is_permutation():
    P = cyclic_shift_matrix(5)
    assert P.shape == (5, 5)
    assert np.all(P.sum(axis=0) == 1)
    assert np.all(P.sum(axis=1) == 1)
    # P^s is the identity.
    assert np.array_equal(np.linalg.matrix_power(P.astype(int), 5), np.eye(5, dtype=int))


def test_biadjacency_block_structure():
    m, s = 3, 5
    B = ramanujan_biadjacency(m, s)
    assert B.shape == (s * s, m * s)
    # First block row consists of identity blocks.
    for b in range(m):
        block = B[:s, b * s : (b + 1) * s]
        assert np.array_equal(block, np.eye(s, dtype=np.int8))
    # Block (a, b) equals P^(a*b).
    P = cyclic_shift_matrix(s).astype(int)
    for a in range(s):
        for b in range(m):
            block = B[a * s : (a + 1) * s, b * s : (b + 1) * s]
            assert np.array_equal(block, np.linalg.matrix_power(P, a * b) % 2)


def test_case1_parameters(ramanujan_case1):
    params = ramanujan_case1.expected_parameters
    assignment = ramanujan_case1.assignment
    assert ramanujan_case1.case == 1
    assert assignment.num_workers == params["num_workers"] == 15
    assert assignment.num_files == params["num_files"] == 25
    assert assignment.computational_load == params["load"] == 5
    assert assignment.replication == params["replication"] == 3


def test_case2_parameters(ramanujan_case2):
    params = ramanujan_case2.expected_parameters
    assignment = ramanujan_case2.assignment
    assert ramanujan_case2.case == 2
    assert assignment.num_workers == params["num_workers"] == 25
    assert assignment.num_files == params["num_files"] == 25
    assert assignment.computational_load == params["load"] == 5
    assert assignment.replication == params["replication"] == 5


def test_case2_larger_m():
    scheme = RamanujanAssignment(m=10, s=5)
    assignment = scheme.assignment
    assert scheme.case == 2
    assert assignment.num_workers == 25
    assert assignment.num_files == 50
    assert assignment.computational_load == 10
    assert assignment.replication == 5


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        RamanujanAssignment(m=1, s=5)  # m must be >= 2
    with pytest.raises(ConfigurationError):
        RamanujanAssignment(m=3, s=4)  # s must be prime
    with pytest.raises(ConfigurationError):
        RamanujanAssignment(m=2, s=5)  # even replication (case 1, r = m = 2)
    with pytest.raises(ConfigurationError):
        RamanujanAssignment(m=5, s=2)  # even replication (case 2, r = s = 2)


def test_even_replication_allowed_when_requested():
    scheme = RamanujanAssignment(m=2, s=5, require_odd_replication=False)
    assert scheme.assignment.replication == 2


def test_biadjacency_validates_inputs():
    with pytest.raises(ConfigurationError):
        ramanujan_biadjacency(1, 5)
    with pytest.raises(ConfigurationError):
        ramanujan_biadjacency(3, 6)


def test_case1_and_mols_have_same_degree_profile(ramanujan_case1, mols_assignment):
    ram = ramanujan_case1.assignment
    assert ram.num_workers == mols_assignment.num_workers
    assert ram.num_files == mols_assignment.num_files
    assert ram.computational_load == mols_assignment.computational_load
    assert ram.replication == mols_assignment.replication
