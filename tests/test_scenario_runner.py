"""ScenarioRunner: end-to-end runs, determinism, and RNG stream isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    run_scenario,
)
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.trace import RunTrace, TraceMismatch


def run_named(name):
    return run_scenario(get_scenario(name))


class TestEndToEnd:
    def test_clean_run_produces_full_trace(self):
        result = run_named("mols-clean")
        spec = result.spec
        assert len(result.trace.rounds) == spec.training.num_iterations
        assert all(r.q == 0 for r in result.trace.rounds)
        assert result.trace.final_params_digest
        assert not np.isnan(result.trace.final_accuracy)
        assert result.history.final_accuracy == result.trace.final_accuracy

    def test_attacked_run_records_byzantine_sets(self):
        result = run_named("mols-alie-omniscient")
        assert all(r.q == 2 and len(r.byzantine) == 2 for r in result.trace.rounds)

    def test_ramping_schedule_shows_in_trace(self):
        result = run_named("mols-constant-ramping")
        assert [r.q for r in result.trace.rounds] == [0, 1, 2, 3]

    def test_rotating_adversary_moves_between_rounds(self):
        result = run_named("mols-revgrad-rotating")
        sets = [r.byzantine for r in result.trace.rounds]
        assert len(set(sets)) > 1  # the window actually rotates

    def test_straggler_timeouts_produce_round_time_and_drops(self):
        result = run_named("mols-alie-straggler-timeout")
        assert result.trace.total_simulated_time > 0.0
        dropped = [f for r in result.trace.rounds for f in r.faults if f["dropped"]]
        assert dropped  # with delay mean 1.0 > timeout 0.8, drops are expected

    def test_compression_changes_the_run(self):
        compressed = run_named("mols-constant-topk")
        plain_dict = get_scenario("mols-constant-topk").to_dict()
        del plain_dict["compression"]
        plain = run_scenario(ScenarioSpec.from_dict(plain_dict))
        assert (
            compressed.trace.rounds[0].votes_digest
            != plain.trace.rounds[0].votes_digest
        )

    def test_summary_row_shape(self):
        row = run_named("mols-alie-all-faults").summary()
        assert row["scenario"] == "mols-alie-all-faults"
        assert row["rounds"] == 4
        assert row["max_q"] == 2
        assert row["corrupted_messages"] > 0


class TestDeterminism:
    def test_identical_seeds_give_bit_identical_traces(self):
        one = run_named("mols-alie-all-faults")
        two = run_named("mols-alie-all-faults")
        one.trace.assert_matches(two.trace)

    def test_different_seed_diverges(self):
        base = get_scenario("mols-alie-omniscient").to_dict()
        base["seed"] = 123
        other = run_scenario(ScenarioSpec.from_dict(base))
        with pytest.raises(TraceMismatch):
            other.trace.assert_matches(run_named("mols-alie-omniscient").trace)

    def test_fault_streams_do_not_perturb_the_adversary(self):
        """Enabling fault injection must not change Byzantine selection or
        attack payload randomness (independent derived RNG streams)."""
        with_faults = run_named("mols-noise-dropout")
        spec_dict = get_scenario("mols-noise-dropout").to_dict()
        del spec_dict["faults"]
        without = run_scenario(ScenarioSpec.from_dict(spec_dict))
        for a, b in zip(with_faults.trace.rounds, without.trace.rounds):
            assert a.byzantine == b.byzantine

    def test_fresh_runner_state_does_not_leak_between_runs(self):
        runner_trace = ScenarioRunner(get_scenario("mols-noise-dropout")).run().trace
        again = ScenarioRunner(get_scenario("mols-noise-dropout")).run().trace
        runner_trace.assert_matches(again)


class TestTraceSerialization:
    def test_trace_json_round_trip_preserves_equality(self, tmp_path):
        result = run_named("draco-clean-stragglers")
        path = tmp_path / "trace.json"
        result.trace.write_json_file(path)
        loaded = RunTrace.from_json_file(path)
        result.trace.assert_matches(loaded)
        assert loaded.total_simulated_time == result.trace.total_simulated_time

    def test_mismatch_reports_round_and_stage(self):
        one = run_named("mols-clean").trace
        two = run_named("mols-clean").trace
        tampered = two.rounds[1].to_dict()
        tampered["aggregate_digest"] = "0" * 16
        from repro.scenarios.trace import RoundTrace

        two.rounds[1] = RoundTrace.from_dict(tampered)
        with pytest.raises(TraceMismatch, match="round 1: aggregate_digest"):
            one.assert_matches(two)


class TestValidation:
    def test_indivisible_batch_size_is_rejected(self):
        data = get_scenario("mols-clean").to_dict()
        data["training"]["batch_size"] = 76  # f = 25 files
        with pytest.raises(ConfigurationError, match="divisible"):
            run_scenario(ScenarioSpec.from_dict(data))

    def test_unknown_attack_name_is_rejected(self):
        data = get_scenario("mols-clean").to_dict()
        data["attack"] = {"name": "nope", "schedule": {"kind": "static", "q": 1}}
        with pytest.raises(ConfigurationError, match="unknown attack"):
            run_scenario(ScenarioSpec.from_dict(data))

    def test_rotating_schedule_with_omniscient_selection_is_rejected(self):
        data = get_scenario("mols-revgrad-rotating").to_dict()
        data["attack"]["selection"] = "omniscient"
        with pytest.raises(ConfigurationError, match="rotating"):
            run_scenario(ScenarioSpec.from_dict(data))

    def test_bad_aggregator_params_are_wrapped(self):
        data = get_scenario("mols-clean").to_dict()
        data["pipeline"] = {
            "kind": "byzshield",
            "aggregator": "median",
            "aggregator_params": {"bogus": 1},
        }
        with pytest.raises(ConfigurationError, match="bad parameters"):
            run_scenario(ScenarioSpec.from_dict(data))


def test_trace_out_creates_parent_directories(tmp_path):
    result = run_named("mols-clean")
    nested = tmp_path / "deep" / "dir" / "trace.json"
    result.trace.write_json_file(nested)
    RunTrace.from_json_file(nested).assert_matches(result.trace)
