"""Tests for the NN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    ResidualDenseBlock,
    Tanh,
)


def numerical_input_gradient(layer, x, epsilon=1e-6):
    """Central-difference gradient of sum(layer(x)) with respect to x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for idx in range(flat.size):
        original = flat[idx]
        flat[idx] = original + epsilon
        plus = layer.forward(x.copy(), training=True).sum()
        flat[idx] = original - epsilon
        minus = layer.forward(x.copy(), training=True).sum()
        flat[idx] = original
        grad_flat[idx] = (plus - minus) / (2 * epsilon)
    return grad


def analytic_input_gradient(layer, x):
    out = layer.forward(x.copy(), training=True)
    return layer.backward(np.ones_like(out))


def numerical_param_gradient(layer, x, key, epsilon=1e-6):
    param = layer.params[key]
    grad = np.zeros_like(param)
    flat = param.reshape(-1)
    grad_flat = grad.reshape(-1)
    for idx in range(flat.size):
        original = flat[idx]
        flat[idx] = original + epsilon
        plus = layer.forward(x.copy(), training=True).sum()
        flat[idx] = original - epsilon
        minus = layer.forward(x.copy(), training=True).sum()
        flat[idx] = original
        grad_flat[idx] = (plus - minus) / (2 * epsilon)
    return grad


# --------------------------------------------------------------------------- #
# Dense
# --------------------------------------------------------------------------- #
def test_dense_forward_shape_and_values():
    layer = Dense(3, 2, rng=0)
    layer.params["W"][...] = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    layer.params["b"][...] = np.array([0.5, -0.5])
    out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
    assert np.allclose(out, [[4.5, 4.5]])


def test_dense_gradients_match_numerical():
    rng = np.random.default_rng(0)
    layer = Dense(4, 3, rng=1)
    x = rng.standard_normal((5, 4))
    analytic = analytic_input_gradient(layer, x)
    numeric = numerical_input_gradient(layer, x)
    assert np.allclose(analytic, numeric, atol=1e-5)
    assert np.allclose(layer.grads["W"], numerical_param_gradient(layer, x, "W"), atol=1e-5)
    assert np.allclose(layer.grads["b"], numerical_param_gradient(layer, x, "b"), atol=1e-5)


def test_dense_without_bias():
    layer = Dense(3, 2, rng=0, use_bias=False)
    assert "b" not in layer.params
    layer.forward(np.ones((1, 3)))
    layer.backward(np.ones((1, 2)))
    assert "b" not in layer.grads


def test_dense_input_validation():
    layer = Dense(3, 2, rng=0)
    with pytest.raises(ConfigurationError):
        layer.forward(np.ones((2, 4)))
    with pytest.raises(ConfigurationError):
        Dense(0, 2)
    fresh = Dense(3, 2, rng=0)
    with pytest.raises(ConfigurationError):
        fresh.backward(np.ones((1, 2)))


def test_dense_num_parameters():
    assert Dense(4, 3, rng=0).num_parameters() == 4 * 3 + 3


# --------------------------------------------------------------------------- #
# Activations and shape layers
# --------------------------------------------------------------------------- #
def test_relu_forward_backward():
    layer = ReLU()
    x = np.array([[-1.0, 2.0], [3.0, -4.0]])
    out = layer.forward(x)
    assert np.allclose(out, [[0.0, 2.0], [3.0, 0.0]])
    grad = layer.backward(np.ones_like(x))
    assert np.allclose(grad, [[0.0, 1.0], [1.0, 0.0]])


def test_tanh_gradient_matches_numerical():
    rng = np.random.default_rng(1)
    layer = Tanh()
    x = rng.standard_normal((3, 4))
    assert np.allclose(
        analytic_input_gradient(layer, x), numerical_input_gradient(layer, x), atol=1e-6
    )


def test_flatten_roundtrip():
    layer = Flatten()
    x = np.arange(24, dtype=np.float64).reshape(2, 3, 2, 2)
    out = layer.forward(x)
    assert out.shape == (2, 12)
    back = layer.backward(out)
    assert back.shape == x.shape
    assert np.allclose(back, x)


def test_backward_before_forward_raises():
    for layer in (ReLU(), Tanh(), Flatten(), MaxPool2D(2)):
        with pytest.raises(ConfigurationError):
            layer.backward(np.ones((1, 2)))


# --------------------------------------------------------------------------- #
# Dropout
# --------------------------------------------------------------------------- #
def test_dropout_eval_mode_is_identity():
    layer = Dropout(0.5, rng=0)
    x = np.ones((4, 10))
    assert np.allclose(layer.forward(x, training=False), x)


def test_dropout_training_zeroes_and_rescales():
    layer = Dropout(0.5, rng=0)
    x = np.ones((200, 50))
    out = layer.forward(x, training=True)
    kept = out != 0.0
    assert 0.3 < kept.mean() < 0.7
    assert np.allclose(out[kept], 2.0)
    grad = layer.backward(np.ones_like(x))
    assert np.allclose(grad[~kept], 0.0)


def test_dropout_rate_zero_is_identity():
    layer = Dropout(0.0)
    x = np.ones((3, 3))
    assert np.allclose(layer.forward(x, training=True), x)
    assert np.allclose(layer.backward(x), x)


def test_dropout_validation():
    with pytest.raises(ConfigurationError):
        Dropout(1.0)
    with pytest.raises(ConfigurationError):
        Dropout(-0.1)


# --------------------------------------------------------------------------- #
# BatchNorm
# --------------------------------------------------------------------------- #
def test_batchnorm_normalizes_training_batch():
    layer = BatchNorm(4)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((64, 4)) * 3.0 + 5.0
    out = layer.forward(x, training=True)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
    assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_eval_uses_running_stats():
    layer = BatchNorm(3, momentum=0.0)  # running stats = last batch stats
    rng = np.random.default_rng(1)
    x = rng.standard_normal((32, 3)) * 2.0 + 1.0
    layer.forward(x, training=True)
    out = layer.forward(x, training=False)
    assert np.allclose(out.mean(axis=0), 0.0, atol=0.1)


def test_batchnorm_gradient_matches_numerical():
    layer = BatchNorm(3)
    rng = np.random.default_rng(2)
    x = rng.standard_normal((6, 3))
    # Randomize gamma/beta so the test is not trivial.
    layer.params["gamma"][...] = rng.uniform(0.5, 1.5, size=3)
    layer.params["beta"][...] = rng.uniform(-0.5, 0.5, size=3)
    analytic = analytic_input_gradient(layer, x)
    numeric = numerical_input_gradient(layer, x)
    assert np.allclose(analytic, numeric, atol=1e-5)


def test_batchnorm_4d_input():
    layer = BatchNorm(2)
    x = np.random.default_rng(3).standard_normal((4, 2, 3, 3))
    out = layer.forward(x, training=True)
    assert out.shape == x.shape
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_batchnorm_validation():
    with pytest.raises(ConfigurationError):
        BatchNorm(0)
    layer = BatchNorm(3)
    with pytest.raises(ConfigurationError):
        layer.forward(np.ones((2, 4)))
    with pytest.raises(ConfigurationError):
        layer.forward(np.ones((2, 3, 4)))


# --------------------------------------------------------------------------- #
# Conv2D and MaxPool2D
# --------------------------------------------------------------------------- #
def test_conv2d_output_shape():
    layer = Conv2D(3, 8, kernel_size=3, padding=1, rng=0)
    x = np.random.default_rng(0).standard_normal((2, 3, 8, 8))
    out = layer.forward(x)
    assert out.shape == (2, 8, 8, 8)


def test_conv2d_stride_and_no_padding_shape():
    layer = Conv2D(1, 2, kernel_size=3, stride=2, padding=0, rng=0)
    x = np.zeros((1, 1, 7, 7))
    assert layer.forward(x).shape == (1, 2, 3, 3)


def test_conv2d_matches_manual_convolution():
    layer = Conv2D(1, 1, kernel_size=2, rng=0, use_bias=False)
    layer.params["W"][...] = np.array([[[[1.0, 0.0], [0.0, -1.0]]]])
    x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
    out = layer.forward(x)
    expected = np.array([[[[0 - 4, 1 - 5], [3 - 7, 4 - 8]]]], dtype=np.float64)
    assert np.allclose(out, expected)


def test_conv2d_gradients_match_numerical():
    layer = Conv2D(2, 3, kernel_size=3, padding=1, rng=1)
    rng = np.random.default_rng(4)
    x = rng.standard_normal((2, 2, 4, 4))
    analytic = analytic_input_gradient(layer, x)
    numeric = numerical_input_gradient(layer, x)
    assert np.allclose(analytic, numeric, atol=1e-5)
    assert np.allclose(
        layer.grads["W"], numerical_param_gradient(layer, x, "W"), atol=1e-5
    )
    assert np.allclose(
        layer.grads["b"], numerical_param_gradient(layer, x, "b"), atol=1e-5
    )


def test_conv2d_validation():
    with pytest.raises(ConfigurationError):
        Conv2D(0, 1, 3)
    with pytest.raises(ConfigurationError):
        Conv2D(1, 1, 3, padding=-1)
    layer = Conv2D(2, 2, 3, rng=0)
    with pytest.raises(ConfigurationError):
        layer.forward(np.ones((1, 3, 5, 5)))
    with pytest.raises(ConfigurationError):
        Conv2D(1, 1, 3, rng=0).backward(np.ones((1, 1, 3, 3)))


def test_maxpool_forward_and_backward():
    layer = MaxPool2D(2)
    x = np.array(
        [[[[1.0, 2.0, 5.0, 6.0], [3.0, 4.0, 7.0, 8.0], [0.0, 0.0, 1.0, 1.0], [0.0, 9.0, 1.0, 1.0]]]]
    )
    out = layer.forward(x)
    assert np.allclose(out, [[[[4.0, 8.0], [9.0, 1.0]]]])
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape
    # Gradient flows only to the (possibly tied) maxima and sums to one per window.
    assert grad[0, 0, 1, 1] == 1.0
    assert grad[0, 0, 0, 0] == 0.0
    window_sum = grad[0, 0, 2:, 2:].sum()
    assert window_sum == pytest.approx(1.0)


def test_maxpool_validation():
    with pytest.raises(ConfigurationError):
        MaxPool2D(0)
    layer = MaxPool2D(2)
    with pytest.raises(ConfigurationError):
        layer.forward(np.ones((1, 1, 3, 3)))  # not divisible
    with pytest.raises(ConfigurationError):
        layer.forward(np.ones((3, 3)))


# --------------------------------------------------------------------------- #
# Residual block
# --------------------------------------------------------------------------- #
def test_residual_block_shapes_and_gradcheck():
    layer = ResidualDenseBlock(5, rng=0)
    rng = np.random.default_rng(5)
    x = rng.standard_normal((4, 5))
    out = layer.forward(x)
    assert out.shape == (4, 5)
    analytic = analytic_input_gradient(layer, x)
    numeric = numerical_input_gradient(layer, x)
    assert np.allclose(analytic, numeric, atol=1e-5)


def test_residual_block_parameter_plumbing():
    layer = ResidualDenseBlock(4, rng=0)
    assert layer.num_parameters() == 2 * (4 * 4 + 4)
    layer.forward(np.ones((2, 4)))
    layer.backward(np.ones((2, 4)))
    names = [name for name, _ in layer.gradient_items()]
    assert set(names) == {"dense1.W", "dense1.b", "dense2.W", "dense2.b"}
    layer.zero_grads()
    assert all(np.all(g == 0) for _, g in layer.gradient_items())
