"""Tests for ``repro lint`` (repro.analysis): each rule's positive, negative
and waiver behavior on fixture trees, plus meta-tests pinning the real source
tree to zero findings and the ``--format json`` schema.

Fixture files are written under ``tmp_path/repro/...`` — the engine anchors
package-relative paths at the innermost ``repro`` directory, so fixtures
scope to rules exactly like the real package.
"""

import json
import pathlib
import textwrap

from repro.analysis import lint_paths
from repro.analysis.cli import run_lint
from repro.analysis.engine import (
    PARSE_ERROR,
    WAIVER_NO_REASON,
    WAIVER_UNKNOWN_RULE,
    LintEngine,
)
from repro.analysis.rules import ALL_RULES

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

RULE_IDS = ("RNG-001", "DTYPE-001", "COW-001", "DIGEST-001", "KERNEL-001", "REG-001")


def lint_tree(tmp_path, files):
    """Write ``files`` (relpath -> source) under tmp_path/repro and lint."""
    for relpath, source in files.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path])


def rules_found(report):
    return sorted({finding.rule for finding in report.findings})


# ---------------------------------------------------------------------------
# RNG-001
# ---------------------------------------------------------------------------


def test_rng_flags_default_rng_outside_seam(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/custom.py": """
            import numpy as np

            rng = np.random.default_rng(7)
            """
        },
    )
    assert rules_found(report) == ["RNG-001"]
    assert "default_rng" in report.findings[0].message


def test_rng_flags_legacy_global_draws_and_stdlib_random(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "training/sampling.py": """
            import random

            import numpy as np

            def draw():
                random.shuffle([1, 2])
                return np.random.normal(size=3)
            """
        },
    )
    assert [f.rule for f in report.findings] == ["RNG-001", "RNG-001"]


def test_rng_flags_from_numpy_random_import(tmp_path):
    report = lint_tree(
        tmp_path,
        {"cluster/x.py": "from numpy.random import default_rng\n"},
    )
    assert rules_found(report) == ["RNG-001"]


def test_rng_allows_seam_module_and_generator_annotations(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "utils/rng.py": """
            import numpy as np

            def as_generator(seed):
                return np.random.default_rng(seed)
            """,
            "attacks/noise.py": """
            import numpy as np

            def craft(rng: np.random.Generator) -> float:
                return float(rng.standard_normal())
            """,
        },
    )
    assert report.ok


def test_rng_waiver_with_reason_suppresses(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/custom.py": """
            import numpy as np

            rng = np.random.default_rng(7)  # repro-lint: disable=RNG-001 (fixture exercises the waiver path)
            """
        },
    )
    assert report.ok


# ---------------------------------------------------------------------------
# DTYPE-001
# ---------------------------------------------------------------------------


def test_dtype_flags_float_literals_outside_seam(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "training/loop.py": """
            import numpy as np

            a = np.zeros(3, dtype=np.float64)
            b = np.ones(3).astype("float32")
            c = np.dtype(float)
            """
        },
    )
    # np.float64 is flagged both as an attribute and as the dtype= value
    assert rules_found(report) == ["DTYPE-001"]
    assert len(report.findings) >= 3


def test_dtype_allows_seam_ints_and_default_dtype(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/backend.py": """
            import numpy as np

            DEFAULT_DTYPE = np.dtype(np.float64)
            """,
            "training/loop.py": """
            import numpy as np

            from repro.core.backend import DEFAULT_DTYPE

            a = np.zeros(3, dtype=DEFAULT_DTYPE)
            b = np.zeros(3, dtype=np.int64)
            c = np.zeros(3, dtype=bool)
            """,
        },
    )
    assert report.ok


def test_dtype_flags_from_numpy_float_import(tmp_path):
    report = lint_tree(
        tmp_path,
        {"graphs/x.py": "from numpy import float64\n"},
    )
    assert rules_found(report) == ["DTYPE-001"]


# ---------------------------------------------------------------------------
# COW-001
# ---------------------------------------------------------------------------


def test_cow_flags_values_densification_in_attacks(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/evil.py": """
            def apply(tensor):
                dense = tensor.values
                return dense.sum()
            """
        },
    )
    assert rules_found(report) == ["COW-001"]


def test_cow_flags_base_writes(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "cluster/faults.py": """
            def corrupt(tensor, payload):
                tensor.base_rows(0)[:] = payload
                base = tensor.base_block()
                base[1] = payload
            """
        },
    )
    assert [f.rule for f in report.findings] == ["COW-001", "COW-001"]


def test_cow_allows_dict_values_calls_and_out_of_scope(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/ok.py": """
            def tally(votes):
                return sum(votes.values())
            """,
            "training/report.py": """
            def densify(tensor):
                return tensor.values
            """,
        },
    )
    assert report.ok


def test_cow_waiver_with_reason_suppresses(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "aggregation/dense.py": """
            def fallback(tensor):
                return tensor.values  # repro-lint: disable=COW-001 (dense path; no-copy view)
            """
        },
    )
    assert report.ok


# ---------------------------------------------------------------------------
# DIGEST-001
# ---------------------------------------------------------------------------


def test_digest_flags_unguarded_absence_default_emission(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "scenarios/spec.py": """
            from dataclasses import dataclass

            @dataclass
            class FeatureSpec:
                name: str = "x"
                extra: object = None

                def to_dict(self):
                    return {"name": self.name, "extra": self.extra}
            """
        },
    )
    assert rules_found(report) == ["DIGEST-001"]
    assert "'extra'" in report.findings[0].message


def test_digest_allows_guarded_or_pruned_emission(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "scenarios/spec.py": """
            from dataclasses import dataclass, field

            def _prune(d):
                return {k: v for k, v in d.items() if v is not None}

            @dataclass
            class FeatureSpec:
                name: str = "x"
                extra: object = None
                tags: tuple = ()
                flag: bool = False
                opts: dict = field(default_factory=dict)

                def to_dict(self):
                    out = _prune({"name": self.name, "extra": self.extra, "opts": dict(self.opts)})
                    if self.tags:
                        out["tags"] = list(self.tags)
                    if self.flag:
                        out["flag"] = True
                    return out
            """
        },
    )
    assert report.ok


def test_digest_flags_bare_defaults_even_with_prune(tmp_path):
    # _prune drops None/empty only; False/"" survive it and still re-key
    # digests, so they need an explicit if-guard.
    report = lint_tree(
        tmp_path,
        {
            "campaigns/spec.py": """
            from dataclasses import dataclass

            def _prune(d):
                return {k: v for k, v in d.items() if v is not None}

            @dataclass
            class RunSpec:
                strict: bool = False

                def to_dict(self):
                    return _prune({"strict": self.strict})
            """
        },
    )
    assert rules_found(report) == ["DIGEST-001"]


def test_digest_flags_asdict_with_absence_fields(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "scenarios/spec.py": """
            import dataclasses
            from dataclasses import dataclass

            @dataclass
            class FeatureSpec:
                extra: object = None

                def to_dict(self):
                    return dataclasses.asdict(self)
            """
        },
    )
    assert rules_found(report) == ["DIGEST-001"]
    assert "asdict" in report.findings[0].message


def test_digest_ignores_non_spec_modules(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "training/config.py": """
            from dataclasses import dataclass

            @dataclass
            class Config:
                extra: object = None

                def to_dict(self):
                    return {"extra": self.extra}
            """
        },
    )
    assert report.ok


# ---------------------------------------------------------------------------
# KERNEL-001
# ---------------------------------------------------------------------------


def test_kernel_flags_parameter_mutation(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "aggregation/kern.py": """
            import numpy as np

            def aggregate(votes):
                votes += 1
                votes[0] = 0
                np.add(votes, 1, out=votes)
                votes.sort()
                return votes
            """
        },
    )
    assert [f.rule for f in report.findings] == ["KERNEL-001"] * 4


def test_kernel_flags_mutation_through_alias(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "aggregation/kern.py": """
            import numpy as np

            def aggregate(votes):
                matrix = np.asarray(votes)
                matrix[0] = 0
                return matrix
            """
        },
    )
    assert rules_found(report) == ["KERNEL-001"]


def test_kernel_allows_copies_private_helpers_and_rebinding(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "aggregation/kern.py": """
            import numpy as np

            def aggregate(votes):
                work = np.array(votes)
                work += 1
                work[0] = 0
                votes = np.sort(votes)
                votes[0] = 0
                return work

            def _scratch(votes):
                votes += 1
                return votes
            """
        },
    )
    assert report.ok


def test_kernel_out_of_scope_modules_untouched(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "training/optimizer.py": """
            def step(params, update):
                params += update
                return params
            """
        },
    )
    assert report.ok


# ---------------------------------------------------------------------------
# REG-001
# ---------------------------------------------------------------------------

_ATTACK_BASE = """
import abc

class Attack(abc.ABC):
    @abc.abstractmethod
    def craft(self):
        ...
"""


def test_reg_flags_unregistered_concrete_subclass(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/base.py": _ATTACK_BASE,
            "attacks/mine.py": """
            from repro.attacks.base import Attack

            class OrphanAttack(Attack):
                def craft(self):
                    return 0
            """,
            "attacks/registry.py": """
            _REGISTRY = {}

            def register_attack(name, cls):
                _REGISTRY[name] = cls
            """,
        },
    )
    assert rules_found(report) == ["REG-001"]
    assert "OrphanAttack" in report.findings[0].message


def test_reg_accepts_registered_subclass_and_exempts_private(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/base.py": _ATTACK_BASE,
            "attacks/mine.py": """
            from repro.attacks.base import Attack

            class _SharedPayload(Attack):
                def craft(self):
                    return 0

            class GoodAttack(_SharedPayload):
                pass
            """,
            "attacks/registry.py": """
            from repro.attacks.mine import GoodAttack

            _REGISTRY = {}

            def register_attack(name, cls):
                _REGISTRY[name] = cls

            for _name, _cls in (("good", GoodAttack),):
                register_attack(_name, _cls)
            """,
        },
    )
    assert report.ok


def test_reg_flags_double_registration(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/base.py": _ATTACK_BASE,
            "attacks/mine.py": """
            from repro.attacks.base import Attack

            class DupAttack(Attack):
                def craft(self):
                    return 0
            """,
            "attacks/registry.py": """
            from repro.attacks.mine import DupAttack

            _REGISTRY = {}

            def register_attack(name, cls):
                _REGISTRY[name] = cls

            for _name, _cls in (("dup", DupAttack), ("dup2", DupAttack)):
                register_attack(_name, _cls)
            """,
        },
    )
    assert rules_found(report) == ["REG-001"]
    assert "2 times" in report.findings[0].message


def test_reg_skips_when_registry_not_in_scan(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/base.py": _ATTACK_BASE,
            "attacks/mine.py": """
            from repro.attacks.base import Attack

            class OrphanAttack(Attack):
                def craft(self):
                    return 0
            """,
        },
    )
    assert report.ok


# ---------------------------------------------------------------------------
# Waiver mechanics
# ---------------------------------------------------------------------------


def test_reasonless_waiver_suppresses_but_reports_waiver_001(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/custom.py": """
            import numpy as np

            rng = np.random.default_rng(7)  # repro-lint: disable=RNG-001
            """
        },
    )
    assert rules_found(report) == [WAIVER_NO_REASON]
    assert not report.ok  # lint stays red until the reason is written down


def test_waiver_for_unknown_rule_reports_waiver_002(tmp_path):
    report = lint_tree(
        tmp_path,
        {"attacks/x.py": "x = 1  # repro-lint: disable=NOPE-123 (typo'd id)\n"},
    )
    assert rules_found(report) == [WAIVER_UNKNOWN_RULE]


def test_one_waiver_may_cover_multiple_rules(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "attacks/custom.py": """
            import numpy as np

            x = np.zeros(3, dtype=np.float64) + np.random.normal()  # repro-lint: disable=RNG-001,DTYPE-001 (fixture)
            """
        },
    )
    assert report.ok


def test_unparseable_file_reports_parse_error(tmp_path):
    report = lint_tree(tmp_path, {"attacks/broken.py": "def f(:\n"})
    assert rules_found(report) == [PARSE_ERROR]


# ---------------------------------------------------------------------------
# Meta: the real tree is clean; CLI contract; JSON schema
# ---------------------------------------------------------------------------


def test_real_source_tree_lints_clean():
    report = lint_paths([SRC_ROOT])
    assert report.findings == (), "\n".join(f.render() for f in report.findings)
    assert report.files_scanned > 100


def test_engine_registers_all_six_rules():
    assert tuple(rule.rule_id for rule in ALL_RULES) == RULE_IDS
    engine = LintEngine()
    for rule_id in RULE_IDS:
        assert rule_id in engine.known_rules


def test_cli_exit_codes_and_check_quietness(tmp_path):
    bad = tmp_path / "repro" / "attacks" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\nrng = np.random.default_rng(1)\n")
    code, output = run_lint([str(tmp_path)])
    assert code == 1
    assert "RNG-001" in output
    ok_dir = tmp_path / "repro" / "clean"
    ok_dir.mkdir()
    (ok_dir / "fine.py").write_text("x = 1\n")
    code, output = run_lint(["--check", str(ok_dir)])
    assert code == 0
    assert output == ""


def test_cli_list_rules_mentions_every_rule():
    code, output = run_lint(["--list-rules"])
    assert code == 0
    for rule_id in RULE_IDS:
        assert rule_id in output


def test_json_format_schema_is_stable(tmp_path):
    bad = tmp_path / "repro" / "attacks" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\nrng = np.random.default_rng(1)\n")
    code, output = run_lint(["--format", "json", str(tmp_path)])
    assert code == 1
    document = json.loads(output)
    assert sorted(document) == ["files_scanned", "findings", "summary", "version"]
    assert document["version"] == 1
    assert document["files_scanned"] == 1
    (finding,) = document["findings"]
    assert sorted(finding) == ["col", "line", "message", "path", "rule"]
    assert finding["rule"] == "RNG-001"
    assert finding["line"] == 2
    assert document["summary"] == {"total": 1, "by_rule": {"RNG-001": 1}}


def test_repro_cli_dispatches_lint_subcommand(tmp_path):
    from repro.cli import main

    ok_dir = tmp_path / "repro" / "clean"
    ok_dir.mkdir(parents=True)
    (ok_dir / "fine.py").write_text("x = 1\n")
    assert main(["lint", "--check", str(ok_dir)]) == 0
    bad = tmp_path / "repro" / "attacks" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\nrng = np.random.default_rng(1)\n")
    assert main(["lint", "--check", str(tmp_path)]) == 1
