"""Tests for the non-IID partition builders and the sharded batch sampler.

Partitions must be pure functions of ``(labels, num_shards, alpha, seed)``
— stable across repeated calls *and* across interpreter processes, since a
distributed deployment recomputes the same partition on every node.  The
pinned digests below are the cross-process contract: they may only change
with an explicit scenario-digest migration.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.data.batching import (
    PARTITION_KINDS,
    ShardedBatchSampler,
    build_file_partition,
    dirichlet_label_partition,
    partition_digest,
    quantity_skew_partition,
)
from repro.data.synthetic import make_gaussian_mixture
from repro.exceptions import DataError

LABELS = np.arange(600) % 4

# Cross-process pins: recorded once, guarded forever.
DIRICHLET_DIGEST = "f408263ae7eb7cd5f42efa997adaf6b1d90bfc99d6666b79d6250c19adcfcb71"
QSKEW_DIGEST = "147d6555ce8ac448906da066860d703d5649bbc03b4b4bf0320c51472bf44a0a"


# --------------------------------------------------------------------------- #
# Partition invariants
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", PARTITION_KINDS)
def test_partition_is_exact_cover(kind):
    dataset = make_gaussian_mixture(num_samples=600, num_classes=4, dim=5, seed=7)
    shards = build_file_partition(dataset, 15, kind, alpha=0.3, seed=3)
    assert len(shards) == 15
    union = np.concatenate(shards)
    assert union.size == 600
    assert np.array_equal(np.sort(union), np.arange(600))
    for shard in shards:
        assert shard.dtype == np.int64
        assert shard.size >= 1
        assert np.array_equal(shard, np.sort(shard))


def test_dirichlet_skew_strength_orders_with_alpha():
    # Small alpha concentrates classes; the per-shard label histograms must
    # be farther from uniform than with a large alpha.
    def skew(alpha):
        shards = dirichlet_label_partition(LABELS, 10, alpha, seed=11)
        deviations = []
        for shard in shards:
            hist = np.bincount(LABELS[shard], minlength=4) / shard.size
            deviations.append(float(np.abs(hist - 0.25).sum()))
        return float(np.mean(deviations))

    assert skew(0.1) > skew(100.0)


def test_partition_digests_are_pinned():
    d = dirichlet_label_partition(LABELS, 15, 0.3, seed=42)
    q = quantity_skew_partition(600, 15, 0.5, seed=42)
    assert partition_digest(d) == DIRICHLET_DIGEST
    assert partition_digest(q) == QSKEW_DIGEST


def test_partition_determinism_across_processes():
    script = (
        "import numpy as np;"
        "from repro.data.batching import dirichlet_label_partition,"
        " quantity_skew_partition, partition_digest;"
        "labels = np.arange(600) % 4;"
        "print(partition_digest(dirichlet_label_partition(labels, 15, 0.3, seed=42)));"
        "print(partition_digest(quantity_skew_partition(600, 15, 0.5, seed=42)))"
    )
    src = str(Path(__file__).resolve().parent.parent / "src")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": src, "PYTHONHASHSEED": "1"},
    )
    assert out.stdout.split() == [DIRICHLET_DIGEST, QSKEW_DIGEST]


def test_partition_seed_and_alpha_sensitivity():
    base = partition_digest(dirichlet_label_partition(LABELS, 15, 0.3, seed=42))
    assert partition_digest(dirichlet_label_partition(LABELS, 15, 0.3, seed=43)) != base
    assert partition_digest(dirichlet_label_partition(LABELS, 15, 0.4, seed=42)) != base


def test_quantity_skew_is_label_agnostic():
    shards = quantity_skew_partition(600, 15, 0.5, seed=42)
    sizes = sorted(len(s) for s in shards)
    assert sizes[0] >= 1
    assert sum(sizes) == 600
    assert sizes[-1] > sizes[0]  # alpha=0.5 must actually skew sizes


# --------------------------------------------------------------------------- #
# Degenerate inputs
# --------------------------------------------------------------------------- #
def test_empty_shard_rebalance_kicks_in():
    # alpha so small that some shard would get 0 samples of a 10-sample
    # class pool; min_per_shard must still be honored.
    shards = dirichlet_label_partition(
        np.zeros(10, dtype=np.int64), 10, 0.01, seed=0, min_per_shard=1
    )
    assert all(s.size == 1 for s in shards)


def test_partition_too_small_for_min_per_shard_raises():
    with pytest.raises(DataError):
        dirichlet_label_partition(np.arange(5) % 2, 10, 0.5, min_per_shard=1)
    with pytest.raises(DataError):
        quantity_skew_partition(5, 10, 0.5, min_per_shard=1)


def test_partition_argument_validation():
    with pytest.raises(DataError):
        dirichlet_label_partition(LABELS, 0, 0.5)
    with pytest.raises(DataError):
        dirichlet_label_partition(LABELS, 5, 0.0)
    with pytest.raises(DataError):
        dirichlet_label_partition(LABELS, 5, 0.5, min_per_shard=-1)
    with pytest.raises(DataError):
        quantity_skew_partition(0, 5, 0.5)
    dataset = make_gaussian_mixture(num_samples=60, num_classes=4, dim=5, seed=7)
    with pytest.raises(DataError):
        build_file_partition(dataset, 5, "zipf")


# --------------------------------------------------------------------------- #
# ShardedBatchSampler
# --------------------------------------------------------------------------- #
def make_sampler(batch_size=30, num_files=15, seed=5):
    dataset = make_gaussian_mixture(num_samples=600, num_classes=4, dim=5, seed=7)
    shards = dirichlet_label_partition(dataset.labels, num_files, 0.3, seed=3)
    return (
        ShardedBatchSampler(
            dataset=dataset, batch_size=batch_size, shards=shards, seed=seed
        ),
        shards,
    )


def test_sharded_sampler_draws_within_own_shard():
    sampler, shards = make_sampler()
    for _ in range(10):
        files = sampler.next_batch_files()
        assert len(files) == 15
        for shard, drawn in zip(shards, files):
            assert drawn.size == sampler.samples_per_file
            assert set(drawn.tolist()) <= set(shard.tolist())


def test_sharded_sampler_deterministic():
    a, _ = make_sampler(seed=5)
    b, _ = make_sampler(seed=5)
    for _ in range(7):
        fa, fb = a.next_batch_files(), b.next_batch_files()
        for x, y in zip(fa, fb):
            assert np.array_equal(x, y)


def test_sharded_sampler_wraps_small_shards():
    # quota larger than the smallest shard forces the wraparound refill.
    dataset = make_gaussian_mixture(num_samples=600, num_classes=4, dim=5, seed=7)
    shards = dirichlet_label_partition(dataset.labels, 15, 0.1, seed=3)
    smallest = min(s.size for s in shards)
    quota = smallest + 1
    sampler = ShardedBatchSampler(
        dataset=dataset, batch_size=quota * 15, shards=shards, seed=1
    )
    seen_all = False
    small_index = int(np.argmin([s.size for s in shards]))
    for _ in range(3):
        drawn = sampler.next_batch_files()[small_index]
        assert drawn.size == quota
        if set(drawn.tolist()) == set(shards[small_index].tolist()) or len(
            set(drawn.tolist())
        ) == smallest:
            seen_all = True
    assert seen_all


def test_sharded_sampler_validation():
    dataset = make_gaussian_mixture(num_samples=60, num_classes=4, dim=5, seed=7)
    shards = [np.arange(30), np.arange(30, 60)]
    with pytest.raises(DataError):
        ShardedBatchSampler(dataset=dataset, batch_size=0, shards=shards)
    with pytest.raises(DataError):
        ShardedBatchSampler(dataset=dataset, batch_size=10, shards=[])
    with pytest.raises(DataError):
        # batch size not divisible by the shard count
        ShardedBatchSampler(dataset=dataset, batch_size=5, shards=shards)
    with pytest.raises(DataError):
        ShardedBatchSampler(
            dataset=dataset,
            batch_size=4,
            shards=[np.arange(30), np.array([59, 60])],
        )
    with pytest.raises(DataError):
        ShardedBatchSampler(
            dataset=dataset, batch_size=4, shards=[np.arange(30), np.array([], int)]
        )


def test_sharded_sampler_batch_data_roundtrip():
    sampler, _ = make_sampler()
    indices = sampler.next_batch()
    inputs, labels = sampler.batch_data(indices)
    assert inputs.shape[0] == labels.shape[0] == indices.size
