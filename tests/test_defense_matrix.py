"""Cross-product robustness checks: every attack against every pipeline.

These tests exercise one aggregation round (no training loop) for the full
attack x defense matrix on a small synthetic gradient workload and check the
qualitative robustness properties each combination is supposed to have:

* when the adversary cannot corrupt a majority of the votes feeding the final
  robust rule, the aggregate stays close to the honest aggregate;
* when redundancy neutralizes every corrupted copy (q < r'), the aggregate is
  *exactly* the attack-free one;
* the non-robust mean is pulled arbitrarily far (sanity check that the attacks
  actually do something).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.geometric_median import GeometricMedianAggregator
from repro.aggregation.krum import MultiKrumAggregator
from repro.aggregation.mean import MeanAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.aggregation.trimmed_mean import TrimmedMeanAggregator
from repro.assignment.mols import MOLSAssignment
from repro.attacks.alie import ALIEAttack
from repro.attacks.base import AttackContext
from repro.attacks.constant import ConstantAttack
from repro.attacks.noise import GaussianNoiseAttack, UniformRandomAttack
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.attacks.selection import OmniscientSelector
from repro.core.pipelines import ByzShieldPipeline
from repro.utils.rng import as_generator

DIM = 12
ASSIGNMENT = MOLSAssignment(load=5, replication=3).assignment

ATTACKS = {
    "alie": ALIEAttack(),
    "constant": ConstantAttack(value=-25.0),
    "reversed_gradient": ReversedGradientAttack(scale=100.0),
    "gaussian_noise": GaussianNoiseAttack(sigma=50.0),
    "uniform_random": UniformRandomAttack(magnitude=30.0),
}

ROBUST_AGGREGATORS = {
    "median": CoordinateWiseMedian(),
    "trimmed_mean": TrimmedMeanAggregator(trim=3),
    "multi_krum": MultiKrumAggregator(num_byzantine=3),
    "geometric_median": GeometricMedianAggregator(),
}


def honest_gradients(seed: int = 0) -> dict[int, np.ndarray]:
    rng = as_generator(seed)
    base = rng.standard_normal(DIM)
    return {
        i: base + 0.1 * rng.standard_normal(DIM) for i in range(ASSIGNMENT.num_files)
    }


def attacked_file_votes(attack, q: int, seed: int = 0):
    """Honest votes with the worst-case q workers replaced by the attack payloads."""
    honest = honest_gradients(seed)
    selector = OmniscientSelector(num_byzantine=q, method="exhaustive")
    rng = as_generator(seed + 1)
    byzantine = selector.select(ASSIGNMENT, 0, rng)
    votes = {
        i: {w: honest[i].copy() for w in ASSIGNMENT.workers_of_file(i)}
        for i in range(ASSIGNMENT.num_files)
    }
    context = AttackContext(
        assignment=ASSIGNMENT,
        byzantine_workers=byzantine,
        honest_file_gradients=honest,
        iteration=0,
        rng=rng,
    )
    for (worker, file_index), payload in attack.apply(context).items():
        votes[file_index][worker] = payload
    return votes, honest


@pytest.mark.parametrize("attack_name", sorted(ATTACKS))
@pytest.mark.parametrize("aggregator_name", sorted(ROBUST_AGGREGATORS))
def test_byzshield_small_q_exact_recovery(attack_name, aggregator_name):
    """q = 1 < r' = 2: no vote can be corrupted, output equals attack-free output."""
    attack = ATTACKS[attack_name]
    aggregator = ROBUST_AGGREGATORS[aggregator_name]
    votes, honest = attacked_file_votes(attack, q=1)
    pipeline = ByzShieldPipeline(ASSIGNMENT, aggregator=aggregator)
    attacked = pipeline.aggregate(votes)
    clean_votes = {
        i: {w: honest[i] for w in ASSIGNMENT.workers_of_file(i)}
        for i in range(ASSIGNMENT.num_files)
    }
    clean = pipeline.aggregate(clean_votes)
    assert np.allclose(attacked, clean)


@pytest.mark.parametrize("attack_name", sorted(ATTACKS))
def test_byzshield_median_stays_near_honest_aggregate_q4(attack_name):
    """q = 4 corrupts 5/25 votes; the median over 25 votes barely moves."""
    attack = ATTACKS[attack_name]
    votes, honest = attacked_file_votes(attack, q=4)
    pipeline = ByzShieldPipeline(ASSIGNMENT, aggregator=CoordinateWiseMedian())
    attacked = pipeline.aggregate(votes)
    honest_matrix = np.vstack([honest[i] for i in range(ASSIGNMENT.num_files)])
    honest_median = np.median(honest_matrix, axis=0)
    honest_spread = honest_matrix.max(axis=0) - honest_matrix.min(axis=0)
    # The attacked median stays within the honest votes' own spread.
    assert np.all(np.abs(attacked - honest_median) <= honest_spread + 1e-9)


@pytest.mark.parametrize("attack_name", ["constant", "reversed_gradient", "gaussian_noise"])
def test_mean_is_broken_by_every_large_magnitude_attack(attack_name):
    """Sanity: the same corrupted votes destroy a plain mean aggregate."""
    attack = ATTACKS[attack_name]
    votes, honest = attacked_file_votes(attack, q=4)
    pipeline = ByzShieldPipeline(ASSIGNMENT, aggregator=MeanAggregator())
    attacked = pipeline.aggregate(votes)
    honest_mean = np.vstack([honest[i] for i in range(ASSIGNMENT.num_files)]).mean(axis=0)
    # Large-magnitude attacks shift the mean by much more than the honest spread.
    assert np.linalg.norm(attacked - honest_mean) > 1.0


@pytest.mark.parametrize("attack_name", sorted(ATTACKS))
def test_corrupted_vote_count_matches_static_analysis(attack_name):
    """The number of votes differing from the honest gradient equals c_max."""
    attack = ATTACKS[attack_name]
    votes, honest = attacked_file_votes(attack, q=4)
    pipeline = ByzShieldPipeline(ASSIGNMENT)
    voted = pipeline.voted_gradients(votes)
    corrupted = sum(
        0 if np.allclose(voted[i], honest[i]) else 1
        for i in range(ASSIGNMENT.num_files)
    )
    # c_max for q=4 on MOLS(5,3) is 5 (paper Table 3).  Colluding attacks send
    # identical payloads, so they corrupt exactly c_max votes; non-colluding
    # noise attacks send a different payload per copy, their copies do not
    # agree with each other and the exact-equality majority can fall back to
    # the honest copy — they can never corrupt more than c_max.
    if attack_name in ("alie", "constant", "reversed_gradient"):
        assert corrupted == 5
    else:
        assert corrupted <= 5
