"""Differential robustness harness.

The load-bearing invariant of the whole attack layer: an attack may only
ever touch Byzantine ``(file, slot)`` cells.  For every registered attack
crossed with every valid ``(selection, schedule)`` pairing, over several
rounds, the honest cells of the vote tensor must stay bit-identical to a
no-attack run — on both the lazy copy-on-write path and the dense path —
and the lazy tensor must never densify.

The second family of properties pins RNG hygiene: an attack's random draws
are a pure function of ``(seed, round, shape)``.  They must not depend on
*which* workers are compromised (only how many cells they write), nor on
whether the tensor already carries overrides from earlier writers.
"""

import numpy as np
import pytest

from repro.attacks.base import AttackContext, byzantine_write_order
from repro.attacks.registry import available_attacks, create_attack
from repro.attacks.schedules import AdversarySchedule, ScheduledSelector
from repro.core.vote_tensor import VoteTensor
from repro.utils.rng import derive_seed

DIM = 8
ROUNDS = 4

# Every valid (selection, schedule) pairing: rotating selection and rotating
# schedules require each other (enforced both ways by ScheduledSelector).
COMBOS = [
    ("omniscient-static", "omniscient", AdversarySchedule(kind="static", q=3)),
    (
        "omniscient-ramping",
        "omniscient",
        AdversarySchedule(kind="ramping", q=0, q_end=4, period=1),
    ),
    ("random-static", "random", AdversarySchedule(kind="static", q=3)),
    (
        "random-ramping",
        "random",
        AdversarySchedule(kind="ramping", q=1, q_end=3, period=2),
    ),
    (
        "rotating-rotating",
        "rotating",
        AdversarySchedule(kind="rotating", q=3, period=1, stride=2),
    ),
]


def honest_matrix(assignment, seed=17):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((assignment.num_files, DIM))


def make_context(assignment, byzantine, honest, iteration=0, rng_seed=0):
    return AttackContext(
        assignment=assignment,
        byzantine_workers=tuple(int(w) for w in byzantine),
        honest_file_gradients={i: honest[i] for i in range(honest.shape[0])},
        iteration=iteration,
        rng=np.random.default_rng(rng_seed),
        honest_matrix=honest,
    )


def dense_from_honest(assignment, honest):
    replicated = np.repeat(honest[:, None, :], assignment.replication, axis=1)
    return VoteTensor(replicated.copy(), assignment.worker_slot_matrix())


@pytest.mark.parametrize("attack_name", available_attacks())
@pytest.mark.parametrize(
    "selection,schedule",
    [(sel, sched) for _, sel, sched in COMBOS],
    ids=[label for label, _, _ in COMBOS],
)
def test_honest_cells_survive_every_attack(
    mols_assignment, attack_name, selection, schedule
):
    assignment = mols_assignment
    honest = honest_matrix(assignment)
    base = np.repeat(honest[:, None, :], assignment.replication, axis=1)
    selector = ScheduledSelector(schedule, selection=selection)
    every_file = np.arange(assignment.num_files)
    for iteration in range(ROUNDS):
        round_seed = derive_seed(123, "diff", iteration)
        byzantine = selector.select(
            assignment, iteration, np.random.default_rng(round_seed)
        )
        lazy = VoteTensor.from_honest(assignment, honest)
        dense = dense_from_honest(assignment, honest)
        lazy.mark_byzantine(byzantine)
        dense.mark_byzantine(byzantine)
        attack = create_attack(attack_name)
        attack.apply_tensor(
            make_context(assignment, byzantine, honest, iteration, round_seed), lazy
        )
        create_attack(attack_name).apply_tensor(
            make_context(assignment, byzantine, honest, iteration, round_seed), dense
        )
        assert lazy.is_lazy, f"{attack_name} densified the lazy tensor"
        lazy_values = lazy.materialize_files(every_file)
        mask = lazy.byzantine_mask
        # Honest cells: bit-identical to the no-attack replication, both paths.
        assert np.array_equal(lazy_values[~mask], base[~mask])
        assert np.array_equal(dense.values[~mask], base[~mask])
        # And the two paths agree everywhere (Byzantine cells included).
        assert np.array_equal(lazy_values, dense.values)
        if len(byzantine):
            expected_overrides = sum(
                len(assignment.files_of_worker(w)) for w in byzantine
            )
            assert lazy.num_overridden_slots == expected_overrides


@pytest.mark.parametrize("attack_name", available_attacks())
def test_schedule_q_zero_rounds_write_nothing(mols_assignment, attack_name):
    # The ramping combo starts at q=0; an attack must be a strict no-op there.
    honest = honest_matrix(mols_assignment)
    tensor = VoteTensor.from_honest(mols_assignment, honest)
    create_attack(attack_name).apply_tensor(
        make_context(mols_assignment, (), honest), tensor
    )
    assert tensor.is_lazy
    assert tensor.num_overridden_slots == 0


STOCHASTIC = ["gaussian_noise", "uniform_random"]
DETERMINISTIC = [n for n in available_attacks() if n not in STOCHASTIC]


@pytest.mark.parametrize("attack_name", STOCHASTIC)
def test_stochastic_draws_independent_of_byzantine_layout(
    mols_assignment, attack_name
):
    # Two disjoint compromised sets of the same size, same round generator:
    # the stacked payload (write order) must be bit-identical, because the
    # draw is a pure function of (seed, shape) — never of worker identity.
    honest = honest_matrix(mols_assignment)
    payloads = []
    for byzantine in ((0, 1, 2), (4, 7, 11)):
        tensor = VoteTensor.from_honest(mols_assignment, honest)
        tensor.mark_byzantine(byzantine)
        context = make_context(mols_assignment, byzantine, honest, rng_seed=99)
        create_attack(attack_name).apply_tensor(context, tensor)
        files, slots = byzantine_write_order(context, tensor)
        payloads.append(tensor.read_slots(files, slots))
    assert payloads[0].shape == payloads[1].shape
    assert np.array_equal(payloads[0], payloads[1])


@pytest.mark.parametrize("attack_name", STOCHASTIC)
def test_stochastic_stream_consumption_matches_dict_path(
    mols_assignment, attack_name
):
    # After the vectorized apply_tensor, the generator must sit at exactly
    # the same stream position as after the scalar dict adapter.
    honest = honest_matrix(mols_assignment)
    byzantine = (0, 5, 9)
    tensor = VoteTensor.from_honest(mols_assignment, honest)
    tensor.mark_byzantine(byzantine)
    ctx_tensor = make_context(mols_assignment, byzantine, honest, rng_seed=7)
    ctx_dict = make_context(mols_assignment, byzantine, honest, rng_seed=7)
    create_attack(attack_name).apply_tensor(ctx_tensor, tensor)
    create_attack(attack_name).apply(ctx_dict)
    assert np.array_equal(
        ctx_tensor.rng.standard_normal(4), ctx_dict.rng.standard_normal(4)
    )


@pytest.mark.parametrize("attack_name", DETERMINISTIC)
def test_deterministic_attacks_never_touch_rng(mols_assignment, attack_name):
    honest = honest_matrix(mols_assignment)
    byzantine = (0, 5, 9)
    tensor = VoteTensor.from_honest(mols_assignment, honest)
    tensor.mark_byzantine(byzantine)
    context = make_context(mols_assignment, byzantine, honest, rng_seed=31)
    create_attack(attack_name).apply_tensor(context, tensor)
    untouched = np.random.default_rng(31)
    assert np.array_equal(
        context.rng.standard_normal(4), untouched.standard_normal(4)
    )


@pytest.mark.parametrize("attack_name", available_attacks())
def test_payloads_unaffected_by_preexisting_overrides(
    mols_assignment, attack_name
):
    # Overrides written before the attack runs (as cluster-fault injection
    # does) must not change what the attack writes.  Seeding the tensor with
    # copies of the honest values keeps the expected result identical while
    # still exercising a non-empty override store.
    honest = honest_matrix(mols_assignment)
    byzantine = (2, 6, 13)
    fresh = VoteTensor.from_honest(mols_assignment, honest)
    touched = VoteTensor.from_honest(mols_assignment, honest)
    for file in (0, 1, 2):
        worker = int(mols_assignment.workers_of_file(file)[0])
        touched.set_vote(file, worker, honest[file].copy())
    assert touched.num_overridden_slots == 3
    fresh.mark_byzantine(byzantine)
    touched.mark_byzantine(byzantine)
    create_attack(attack_name).apply_tensor(
        make_context(mols_assignment, byzantine, honest, rng_seed=5), fresh
    )
    create_attack(attack_name).apply_tensor(
        make_context(mols_assignment, byzantine, honest, rng_seed=5), touched
    )
    every_file = np.arange(mols_assignment.num_files)
    assert np.array_equal(
        fresh.materialize_files(every_file), touched.materialize_files(every_file)
    )
