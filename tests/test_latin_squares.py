"""Tests for repro.fields.latin_squares, including the paper's Table 1."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fields.latin_squares import (
    LatinSquare,
    are_orthogonal,
    is_latin_square,
    mols_family,
)


def test_is_latin_square_detects_valid_and_invalid():
    valid = np.array([[0, 1, 2], [1, 2, 0], [2, 0, 1]])
    assert is_latin_square(valid)
    invalid = np.array([[0, 1, 2], [1, 2, 0], [2, 1, 0]])
    assert not is_latin_square(invalid)
    assert not is_latin_square(np.zeros((2, 3)))


def test_latin_square_constructor_validates():
    with pytest.raises(ConfigurationError):
        LatinSquare(np.array([[0, 0], [1, 1]]))


def test_from_linear_matches_paper_table1():
    # Table 1 of the paper: L1, L2, L3 of degree 5 with L_alpha(i,j) = alpha*i + j.
    l1 = LatinSquare.from_linear(5, 1)
    l2 = LatinSquare.from_linear(5, 2)
    l3 = LatinSquare.from_linear(5, 3)
    expected_l1 = np.array(
        [[0, 1, 2, 3, 4], [1, 2, 3, 4, 0], [2, 3, 4, 0, 1], [3, 4, 0, 1, 2], [4, 0, 1, 2, 3]]
    )
    expected_l2 = np.array(
        [[0, 1, 2, 3, 4], [2, 3, 4, 0, 1], [4, 0, 1, 2, 3], [1, 2, 3, 4, 0], [3, 4, 0, 1, 2]]
    )
    expected_l3 = np.array(
        [[0, 1, 2, 3, 4], [3, 4, 0, 1, 2], [1, 2, 3, 4, 0], [4, 0, 1, 2, 3], [2, 3, 4, 0, 1]]
    )
    assert np.array_equal(l1.grid, expected_l1)
    assert np.array_equal(l2.grid, expected_l2)
    assert np.array_equal(l3.grid, expected_l3)


def test_from_linear_requires_prime_and_nonzero_alpha():
    with pytest.raises(ConfigurationError):
        LatinSquare.from_linear(6, 1)
    with pytest.raises(ConfigurationError):
        LatinSquare.from_linear(5, 0)
    with pytest.raises(ConfigurationError):
        LatinSquare.from_linear(5, 5)  # alpha reduces to zero mod 5


def test_symbol_cells_count_and_content():
    square = LatinSquare.from_linear(5, 1)
    cells = square.symbol_cells(0)
    assert len(cells) == 5
    for i, j in cells:
        assert square[i, j] == 0
    # From the paper's Example 1: symbol 0 of L1 lies at these cells.
    assert set(cells) == {(0, 0), (1, 4), (2, 3), (3, 2), (4, 1)}


def test_symbol_cells_out_of_range():
    square = LatinSquare.from_linear(5, 1)
    with pytest.raises(ConfigurationError):
        square.symbol_cells(5)


def test_orthogonality_of_linear_family():
    squares = mols_family(5, 4)
    for i in range(len(squares)):
        for j in range(i + 1, len(squares)):
            assert are_orthogonal(squares[i], squares[j])


def test_square_not_orthogonal_with_itself():
    square = LatinSquare.from_linear(5, 1)
    assert not are_orthogonal(square, square)


def test_are_orthogonal_requires_equal_degree():
    with pytest.raises(ConfigurationError):
        are_orthogonal(LatinSquare.from_linear(5, 1), LatinSquare.from_linear(7, 1))


def test_mols_family_limits():
    assert len(mols_family(7, 6)) == 6
    with pytest.raises(ConfigurationError):
        mols_family(5, 5)  # at most l-1 = 4
    with pytest.raises(ConfigurationError):
        mols_family(4, 2)  # degree must be prime in this construction


def test_degree_property():
    assert LatinSquare.from_linear(7, 2).degree == 7
