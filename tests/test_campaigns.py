"""Campaign engine: spec loading, grid expansion, store resumability and
parallel-vs-serial bit-identity."""

from __future__ import annotations

import json

import pytest

from repro.campaigns import (
    CampaignExecutor,
    CampaignSpec,
    ResultStore,
    ScenarioRecord,
    accuracy_vs_q_rows,
    campaign_report,
    execute_spec,
    find_q_axis,
    run_specs,
)
from repro.exceptions import ConfigurationError, ReproError
from repro.scenarios import get_scenario


def mini_dict(**overrides):
    """A 4-scenario campaign small enough for end-to-end tests (~10 ms/run)."""
    data = {
        "name": "mini",
        "base_scenario": "mols-alie-omniscient",
        "seed": 3,
        "grid": {
            "attack.schedule.q": [0, 2],
            "pipeline.aggregator": ["median", "mean"],
        },
    }
    data.update(overrides)
    return data


class TestSpecLoading:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            CampaignSpec.from_dict({"base_scenario": "mols-clean"})

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            CampaignSpec.from_dict(mini_dict(typo_section=1))

    def test_requires_exactly_one_base(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            CampaignSpec.from_dict({"name": "x", "grid": {}})
        with pytest.raises(ConfigurationError, match="exactly one"):
            CampaignSpec.from_dict(
                {"name": "x", "base_scenario": "mols-clean", "base": {"name": "y"}}
            )

    def test_inline_base_is_validated_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            CampaignSpec.from_dict(
                {"name": "x", "base": {"name": "y", "bogus_section": {}}}
            )

    def test_unknown_base_scenario_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            CampaignSpec.from_dict({"name": "x", "base_scenario": "no-such"})

    def test_rejects_name_axis_and_empty_values(self):
        with pytest.raises(ConfigurationError, match="name"):
            CampaignSpec.from_dict(mini_dict(grid={"name": ["a", "b"]}))
        with pytest.raises(ConfigurationError, match="no values"):
            CampaignSpec.from_dict(mini_dict(grid={"attack.schedule.q": []}))

    def test_rejects_duplicate_value_labels(self):
        grid = {"pipeline.aggregator": [
            {"label": "same", "value": "median"},
            {"label": "same", "value": "mean"},
        ]}
        with pytest.raises(ConfigurationError, match="duplicate value labels"):
            CampaignSpec.from_dict(mini_dict(grid=grid))

    def test_rejects_unknown_seed_policy(self):
        with pytest.raises(ConfigurationError, match="seed_policy"):
            CampaignSpec.from_dict(mini_dict(seed_policy="chaotic"))

    def test_grid_must_be_a_mapping(self):
        with pytest.raises(ConfigurationError, match="grid"):
            CampaignSpec.from_dict(mini_dict(grid=["attack.schedule.q"]))

    def test_json_file_round_trip(self, tmp_path):
        campaign = CampaignSpec.from_dict(mini_dict())
        path = tmp_path / "campaign.json"
        path.write_text(campaign.to_json())
        again = CampaignSpec.from_json_file(path)
        assert again == campaign
        assert again.digest() == campaign.digest()

    def test_bad_json_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="cannot load"):
            CampaignSpec.from_json_file(path)


class TestDigestStability:
    def test_campaign_digest_is_pinned(self):
        """The digest names the result directory; this value changing means
        every existing store is orphaned — bump deliberately."""
        assert CampaignSpec.from_dict(mini_dict()).digest() == "f931ec4ec93d0a27"

    def test_expanded_seeds_and_digests_are_pinned(self):
        expanded = CampaignSpec.from_dict(mini_dict()).expand()
        assert [(s.spec.name, s.spec.seed, s.spec.digest()) for s in expanded] == [
            ("mini/q=0,aggregator=median", 1429249486629000889, "8e496c2ca4cc38db"),
            ("mini/q=0,aggregator=mean", 6616726963829021013, "60c31818d805b143"),
            ("mini/q=2,aggregator=median", 1349824509233761446, "190649e9c082940e"),
            ("mini/q=2,aggregator=mean", 920690088119628389, "e03b72c56efb835a"),
        ]

    def test_digest_changes_with_grid_content(self):
        base = CampaignSpec.from_dict(mini_dict())
        grown = CampaignSpec.from_dict(
            mini_dict(grid={"attack.schedule.q": [0, 2, 4],
                            "pipeline.aggregator": ["median", "mean"]})
        )
        assert grown.digest() != base.digest()


class TestExpansion:
    def test_expansion_is_deterministic(self):
        campaign = CampaignSpec.from_dict(mini_dict())
        first = [(s.spec.name, s.spec.seed, s.spec.digest()) for s in campaign.expand()]
        second = [(s.spec.name, s.spec.seed, s.spec.digest()) for s in campaign.expand()]
        assert first == second

    def test_axis_declaration_order_is_irrelevant(self):
        """Axes are sorted by path, so dict insertion order cannot change
        the expansion (or the digest)."""
        forward = CampaignSpec.from_dict(mini_dict())
        reordered = CampaignSpec.from_dict(
            mini_dict(grid={
                "pipeline.aggregator": ["median", "mean"],
                "attack.schedule.q": [0, 2],
            })
        )
        assert reordered.digest() == forward.digest()
        assert [s.spec.digest() for s in reordered.expand()] == [
            s.spec.digest() for s in forward.expand()
        ]

    def test_adding_a_value_keeps_existing_cells_seeds(self):
        """Seeds derive from the cell's name, not its index: growing an axis
        must not reshuffle the seeds (or digests) of already-run cells."""
        small = {s.spec.name: s.spec for s in CampaignSpec.from_dict(mini_dict()).expand()}
        grown = CampaignSpec.from_dict(
            mini_dict(grid={"attack.schedule.q": [0, 2, 4],
                            "pipeline.aggregator": ["median", "mean"]})
        ).expand()
        unchanged = [s for s in grown if s.spec.name in small]
        assert len(unchanged) == 4
        for scenario in unchanged:
            assert scenario.spec == small[scenario.spec.name]

    def test_overrides_land_in_the_spec(self):
        expanded = CampaignSpec.from_dict(mini_dict()).expand()
        by_name = {s.spec.name: s.spec for s in expanded}
        spec = by_name["mini/q=2,aggregator=mean"]
        assert spec.attack is not None and spec.attack.schedule.q == 2
        assert spec.pipeline.aggregator == "mean"

    def test_empty_grid_expands_to_the_base_alone(self):
        campaign = CampaignSpec.from_dict(mini_dict(grid={}))
        expanded = campaign.expand()
        assert len(expanded) == 1
        assert expanded[0].spec.name == "mini"

    def test_labeled_dict_values(self):
        campaign = CampaignSpec.from_dict(mini_dict(grid={
            "pipeline": [
                {"label": "median", "value": {"kind": "byzshield", "aggregator": "median"}},
                {"label": "mom", "value": {"kind": "byzshield", "aggregator": "median_of_means",
                                           "aggregator_params": {"num_groups": 5}}},
            ],
        }))
        expanded = campaign.expand()
        assert [s.spec.name for s in expanded] == ["mini/pipeline=median", "mini/pipeline=mom"]
        assert expanded[1].spec.pipeline.aggregator == "median_of_means"

    def test_fixed_seed_policy_keeps_the_base_seed(self):
        campaign = CampaignSpec.from_dict(mini_dict(seed_policy="fixed"))
        base_seed = get_scenario("mols-alie-omniscient").seed
        assert all(s.spec.seed == base_seed for s in campaign.expand())

    def test_explicit_seed_axis_wins_over_derivation(self):
        campaign = CampaignSpec.from_dict(mini_dict(grid={"seed": [11, 12]}))
        assert [s.spec.seed for s in campaign.expand()] == [11, 12]

    def test_distinct_axis_keys_use_the_short_last_segment(self):
        campaign = CampaignSpec.from_dict(mini_dict(grid={
            "attack.schedule.q": [0, 2],
            "training.num_iterations": [2],
        }))
        names = [s.spec.name for s in campaign.expand()]
        assert names[0] == "mini/q=0,num_iterations=2"

    def test_axis_key_collision_falls_back_to_full_paths(self):
        campaign = CampaignSpec.from_dict(mini_dict(grid={
            "attack.params": [{"label": "default", "value": {}}],
            "cluster.params": [{"label": "mols5x3",
                                "value": {"load": 5, "replication": 3}}],
        }))
        names = [s.spec.name for s in campaign.expand()]
        assert names == ["mini/attack.params=default,cluster.params=mols5x3"]

    def test_override_into_non_dict_raises(self):
        campaign = CampaignSpec.from_dict(
            mini_dict(grid={"seed.extra": [1]})
        )
        with pytest.raises(ConfigurationError, match="non-dict"):
            campaign.expand()

    def test_invalid_cell_error_names_the_cell(self):
        campaign = CampaignSpec.from_dict(
            mini_dict(grid={"pipeline.kind": ["byzshield", "warpdrive"]})
        )
        with pytest.raises(ConfigurationError, match="kind=warpdrive"):
            campaign.expand()


class TestRunSpecs:
    def test_rejects_negative_processes(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            run_specs([], processes=-1)

    def test_rejects_override_length_mismatch(self):
        spec = get_scenario("mols-clean")
        with pytest.raises(ConfigurationError, match="override"):
            run_specs([spec], overrides=[{}, {}])

    def test_record_round_trips_through_json(self):
        record = execute_spec(get_scenario("mols-clean"), {"why": "test"})
        again = ScenarioRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert again == record
        assert again.overrides == {"why": "test"}

    def test_record_from_dict_missing_key_raises(self):
        with pytest.raises(ReproError, match="missing key"):
            ScenarioRecord.from_dict({"scenario": "x"})


class TestExecutorAndStore:
    def test_parallel_matches_serial_bit_for_bit(self):
        """The acceptance property at test scale: a 4-scenario mini-campaign
        run on 2 worker processes produces records identical to the serial
        run — including every per-round trace digest."""
        specs = [s.spec for s in CampaignSpec.from_dict(mini_dict()).expand()]
        serial = run_specs(specs, processes=0)
        parallel = run_specs(specs, processes=2)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_run_populates_the_store(self, tmp_path):
        campaign = CampaignSpec.from_dict(mini_dict())
        store = ResultStore(campaign, root=tmp_path)
        result = CampaignExecutor(campaign, store=store).run()
        assert result.ran == 4 and result.skipped == 0
        assert store.directory == tmp_path / campaign.digest()
        assert store.campaign_path.exists()
        assert store.completed_digests() == {s.spec.digest() for s in result.scenarios}

    def test_rerun_skips_completed_scenarios(self, tmp_path):
        campaign = CampaignSpec.from_dict(mini_dict())
        store = ResultStore(campaign, root=tmp_path)
        first = CampaignExecutor(campaign, store=store).run()
        second = CampaignExecutor(campaign, store=store).run()
        assert second.ran == 0 and second.skipped == 4
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records
        ]

    def test_interrupted_run_keeps_finished_scenarios(self, tmp_path):
        """Records persist the moment each scenario completes: an interrupt
        mid-campaign loses only in-flight work, and the re-run resumes."""
        campaign = CampaignSpec.from_dict(mini_dict())
        store = ResultStore(campaign, root=tmp_path)
        original_save = store.save
        saves = 0

        def interrupting_save(record):
            nonlocal saves
            path = original_save(record)
            saves += 1
            if saves == 2:
                raise KeyboardInterrupt
            return path

        store.save = interrupting_save
        with pytest.raises(KeyboardInterrupt):
            CampaignExecutor(campaign, store=store).run()
        store.save = original_save
        assert len(store.completed_digests()) == 2
        resumed = CampaignExecutor(campaign, store=store).run()
        assert resumed.ran == 2 and resumed.skipped == 2

    def test_partial_store_runs_only_the_missing_cells(self, tmp_path):
        campaign = CampaignSpec.from_dict(mini_dict())
        store = ResultStore(campaign, root=tmp_path)
        store.initialize()
        scenarios = campaign.expand()
        store.save(execute_spec(scenarios[0].spec, scenarios[0].overrides))
        result = CampaignExecutor(campaign, store=store).run()
        assert result.ran == 3 and result.skipped == 1
        assert all(r is not None for r in result.records)

    def test_status_reports_completed_and_pending(self, tmp_path):
        campaign = CampaignSpec.from_dict(mini_dict())
        store = ResultStore(campaign, root=tmp_path)
        executor = CampaignExecutor(campaign, store=store)
        before = executor.status()
        assert before.total == 4 and not before.completed and not before.done
        executor.run()
        after = executor.status()
        assert after.done and len(after.completed) == 4

    def test_store_rejects_a_foreign_campaign_json(self, tmp_path):
        campaign = CampaignSpec.from_dict(mini_dict())
        store = ResultStore(campaign, root=tmp_path)
        store.directory.mkdir(parents=True)
        store.campaign_path.write_text(json.dumps({"name": "impostor"}))
        with pytest.raises(ReproError, match="different campaign"):
            store.initialize()

    def test_store_rejects_a_record_with_mismatched_digest(self, tmp_path):
        campaign = CampaignSpec.from_dict(mini_dict())
        store = ResultStore(campaign, root=tmp_path)
        record = execute_spec(get_scenario("mols-clean"))
        saved = store.save(record)
        moved = saved.with_name("0000000000000000.json")
        saved.rename(moved)
        with pytest.raises(ReproError, match="corrupt"):
            store.load("0000000000000000")


class TestReport:
    def test_find_q_axis(self):
        campaign = CampaignSpec.from_dict(mini_dict())
        assert find_q_axis(campaign) == "attack.schedule.q"
        no_q = CampaignSpec.from_dict(mini_dict(grid={"pipeline.aggregator": ["median"]}))
        assert find_q_axis(no_q) is None

    def test_accuracy_vs_q_pivot_shape(self, tmp_path):
        campaign = CampaignSpec.from_dict(mini_dict())
        result = CampaignExecutor(
            campaign, store=ResultStore(campaign, root=tmp_path)
        ).run()
        rows = accuracy_vs_q_rows(campaign, result.scenarios, result.records)
        # Rows follow the axis's declared value order, not lexicographic.
        assert [row["aggregator"] for row in rows] == ["median", "mean"]
        for row in rows:
            assert set(row) == {"aggregator", "q=0", "q=2"}
            assert all(isinstance(row[c], float) for c in ("q=0", "q=2"))

    def test_report_renders_missing_records_note(self):
        campaign = CampaignSpec.from_dict(mini_dict())
        executor = CampaignExecutor(campaign)
        from repro.campaigns import CampaignRunResult

        result = CampaignRunResult(
            campaign=campaign,
            scenarios=executor.scenarios,
            records=[None] * len(executor.scenarios),
        )
        text = campaign_report(result)
        assert "no stored record" in text
