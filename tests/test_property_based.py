"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aggregation.geometric_median import geometric_median
from repro.aggregation.majority import majority_vote
from repro.aggregation.median import CoordinateWiseMedian
from repro.aggregation.trimmed_mean import TrimmedMeanAggregator
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.core.distortion import (
    count_distorted,
    majority_threshold,
    max_distortion_greedy,
)
from repro.fields.latin_squares import LatinSquare, are_orthogonal
from repro.fields.prime_field import PrimeField
from repro.graphs.expansion import gamma_upper_bound, neighborhood_lower_bound
from repro.graphs.spectral import second_eigenvalue
from repro.utils.arrays import flatten_arrays, unflatten_vector

SUPPRESS = [HealthCheck.too_slow]

PRIMES = st.sampled_from([2, 3, 5, 7, 11, 13])
SMALL_PRIMES = st.sampled_from([5, 7, 11])


# --------------------------------------------------------------------------- #
# Finite fields and Latin squares
# --------------------------------------------------------------------------- #
@settings(deadline=None, max_examples=50, suppress_health_check=SUPPRESS)
@given(p=PRIMES, a=st.integers(0, 100), b=st.integers(0, 100), c=st.integers(0, 100))
def test_field_axioms(p, a, b, c):
    field = PrimeField(p)
    # Commutativity and associativity of addition / multiplication.
    assert field.add(a, b) == field.add(b, a)
    assert field.mul(a, b) == field.mul(b, a)
    assert field.add(field.add(a, b), c) == field.add(a, field.add(b, c))
    assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
    # Distributivity.
    assert field.mul(a, field.add(b, c)) == field.add(field.mul(a, b), field.mul(a, c))
    # Additive and multiplicative inverses.
    assert field.add(a, field.neg(a)) == 0
    if a % p != 0:
        assert field.mul(a, field.inv(a)) == 1


@settings(deadline=None, max_examples=30, suppress_health_check=SUPPRESS)
@given(l=SMALL_PRIMES, data=st.data())
def test_linear_latin_squares_are_valid_and_orthogonal(l, data):
    alpha = data.draw(st.integers(1, l - 1))
    beta = data.draw(st.integers(1, l - 1))
    square_a = LatinSquare.from_linear(l, alpha)
    square_b = LatinSquare.from_linear(l, beta)
    assert square_a.degree == l
    if alpha != beta:
        assert are_orthogonal(square_a, square_b)
    else:
        assert not are_orthogonal(square_a, square_b)


# --------------------------------------------------------------------------- #
# Assignment graph invariants
# --------------------------------------------------------------------------- #
@settings(deadline=None, max_examples=15, suppress_health_check=SUPPRESS)
@given(
    l=st.sampled_from([5, 7]),
    r=st.sampled_from([3, 5]),
)
def test_mols_assignment_structural_invariants(l, r):
    if r > l - 1:
        return
    assignment = MOLSAssignment(load=l, replication=r).assignment
    assert assignment.num_workers == r * l
    assert assignment.num_files == l * l
    assert assignment.num_edges == r * l * l
    # Biregularity.
    assert np.all(assignment.worker_degrees == l)
    assert np.all(assignment.file_degrees == r)
    # Optimal expansion: µ₁ = 1/r.
    assert second_eigenvalue(assignment) == pytest.approx(1.0 / r, abs=1e-8)


@settings(deadline=None, max_examples=10, suppress_health_check=SUPPRESS)
@given(m=st.sampled_from([3, 5, 7]), s=st.sampled_from([3, 5, 7]))
def test_ramanujan_assignment_matches_eq6(m, s):
    replication = m if m < s else s
    if replication % 2 == 0:
        return
    assignment = RamanujanAssignment(m=m, s=s).assignment
    expected = RamanujanAssignment(m=m, s=s).expected_parameters
    assert assignment.num_workers == expected["num_workers"]
    assert assignment.num_files == expected["num_files"]
    assert assignment.computational_load == expected["load"]
    assert assignment.replication == expected["replication"]


# --------------------------------------------------------------------------- #
# Distortion invariants
# --------------------------------------------------------------------------- #
@settings(deadline=None, max_examples=25, suppress_health_check=SUPPRESS)
@given(q=st.integers(0, 15), seed=st.integers(0, 10_000))
def test_random_byzantine_sets_never_beat_gamma(q, seed):
    assignment = MOLSAssignment(load=5, replication=3).assignment
    rng = np.random.default_rng(seed)
    subset = rng.choice(assignment.num_workers, size=q, replace=False)
    corrupted = count_distorted(assignment, subset)
    if q > 0:
        gamma = gamma_upper_bound(q, 5, 3, 15, second_eigenvalue(assignment))
        assert corrupted <= gamma + 1e-9
    else:
        assert corrupted == 0
    # Monotonicity: a superset can only corrupt at least as many files.
    if 0 < q < assignment.num_workers:
        remaining = [w for w in range(assignment.num_workers) if w not in set(int(x) for x in subset)]
        extra = rng.choice(remaining)
        assert count_distorted(assignment, list(subset) + [int(extra)]) >= corrupted


@settings(deadline=None, max_examples=20, suppress_health_check=SUPPRESS)
@given(q=st.integers(0, 15))
def test_greedy_returns_a_valid_subset_achieving_its_count(q):
    assignment = MOLSAssignment(load=5, replication=3).assignment
    greedy = max_distortion_greedy(assignment, q)
    # The reported set is a valid q-subset and really achieves the reported count.
    assert len(set(greedy.byzantine_workers)) == q
    assert count_distorted(assignment, greedy.byzantine_workers) == greedy.c_max
    assert 0 <= greedy.epsilon <= 1.0


@settings(deadline=None, max_examples=40, suppress_health_check=SUPPRESS)
@given(
    q=st.integers(1, 20),
    l=st.integers(2, 10),
    r=st.sampled_from([3, 5, 7]),
)
def test_neighborhood_bound_is_nonnegative_and_at_most_ql_over_gamma_consistency(q, l, r):
    K = r * l
    if q > K:
        return
    mu1 = 1.0 / r
    beta = neighborhood_lower_bound(q, l, r, K, mu1)
    assert beta >= 0.0
    assert beta <= q * l + 1e-9  # cannot exceed the total number of stored copies
    gamma = gamma_upper_bound(q, l, r, K, mu1)
    assert gamma >= 0.0
    # Gamma formula consistency: gamma = (ql - beta) / (r' - 1).
    assert gamma == pytest.approx((q * l - beta) / (majority_threshold(r) - 1))


# --------------------------------------------------------------------------- #
# Aggregator invariants
# --------------------------------------------------------------------------- #
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(deadline=None, max_examples=50, suppress_health_check=SUPPRESS)
@given(
    votes=st.lists(
        st.lists(finite_floats, min_size=3, max_size=3), min_size=1, max_size=12
    )
)
def test_median_is_within_vote_range(votes):
    matrix = np.array(votes, dtype=np.float64)
    result = CoordinateWiseMedian()(matrix)
    assert np.all(result >= matrix.min(axis=0) - 1e-12)
    assert np.all(result <= matrix.max(axis=0) + 1e-12)


@settings(deadline=None, max_examples=50, suppress_health_check=SUPPRESS)
@given(
    votes=st.lists(
        st.lists(finite_floats, min_size=2, max_size=2), min_size=5, max_size=12
    ),
    trim=st.integers(0, 2),
)
def test_trimmed_mean_within_range(votes, trim):
    matrix = np.array(votes, dtype=np.float64)
    if matrix.shape[0] <= 2 * trim:
        return
    result = TrimmedMeanAggregator(trim=trim)(matrix)
    assert np.all(result >= matrix.min(axis=0) - 1e-12)
    assert np.all(result <= matrix.max(axis=0) + 1e-12)


@settings(deadline=None, max_examples=30, suppress_health_check=SUPPRESS)
@given(
    votes=st.lists(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=2),
        min_size=1,
        max_size=10,
    )
)
def test_geometric_median_cost_not_worse_than_mean(votes):
    matrix = np.array(votes, dtype=np.float64)
    gm = geometric_median(matrix)
    mean = matrix.mean(axis=0)
    cost_gm = np.linalg.norm(matrix - gm, axis=1).sum()
    cost_mean = np.linalg.norm(matrix - mean, axis=1).sum()
    assert cost_gm <= cost_mean + 1e-6


@settings(deadline=None, max_examples=50, suppress_health_check=SUPPRESS)
@given(
    num_votes=st.integers(1, 9),
    dim=st.integers(1, 6),
    winner_count=st.integers(1, 9),
    seed=st.integers(0, 1000),
)
def test_majority_vote_returns_most_frequent(num_votes, dim, winner_count, seed):
    if winner_count > num_votes:
        return
    rng = np.random.default_rng(seed)
    winner = rng.standard_normal(dim)
    votes = [winner.copy() for _ in range(winner_count)]
    votes += [rng.standard_normal(dim) for _ in range(num_votes - winner_count)]
    rng.shuffle(votes)
    result, count = majority_vote(votes)
    if winner_count > num_votes - winner_count:
        assert np.array_equal(result, winner)
        assert count == winner_count


# --------------------------------------------------------------------------- #
# Flatten / unflatten roundtrip
# --------------------------------------------------------------------------- #
@settings(deadline=None, max_examples=40, suppress_health_check=SUPPRESS)
@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=5
    ),
    seed=st.integers(0, 1000),
)
def test_flatten_unflatten_roundtrip(shapes, seed):
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(shape) for shape in shapes]
    flat = flatten_arrays(arrays)
    restored = unflatten_vector(flat, shapes)
    assert len(restored) == len(arrays)
    for original, back in zip(arrays, restored):
        assert np.allclose(original, back)
