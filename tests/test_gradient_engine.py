"""Equivalence properties of the stacked per-file gradient engine.

The stacked engine (`Sequential.per_file_loss_and_gradients`, dispatched by
``ModelGradientComputer.batched``) must be a pure execution-layout change:
for every architecture, every file count and BatchNorm on/off, its per-file
losses and gradients have to be *bit-identical* to the looped engine — and
ragged files or layers without a stacked rule must silently fall back to the
looped path.  The 24 golden traces (tests/test_golden_traces.py) pin the same
contract end to end; these tests pin it at the engine level with diagnosable
granularity.
"""

import numpy as np
import pytest

from repro.compression.compressors import (
    IdentityCompressor,
    QuantizedCompressor,
    RandomKCompressor,
    SignCompressor,
    TopKCompressor,
)
from repro.exceptions import ConfigurationError, TrainingError
from repro.nn.layers import Dropout
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.models import Sequential, build_cnn, build_mlp, build_resnet_lite
from repro.training.gradients import ModelGradientComputer

FILE_COUNTS = (1, 4, 25)

MODELS = {
    "mlp": (lambda: build_mlp(30, 5, hidden=(16, 16), seed=3), "dense"),
    "mlp_bn": (
        lambda: build_mlp(30, 5, hidden=(16, 16), seed=3, batch_norm=True),
        "dense",
    ),
    "cnn": (lambda: build_cnn((1, 8, 8), 4, channels=(4, 8), seed=3), "image"),
    "resnet_lite": (
        lambda: build_resnet_lite(30, 5, width=16, num_blocks=2, seed=3),
        "dense",
    ),
}


def make_files(kind, num_files, batch=6, seed=0):
    rng = np.random.default_rng(seed)
    files = []
    for _ in range(num_files):
        if kind == "dense":
            inputs = rng.standard_normal((batch, 30))
            labels = rng.integers(0, 5, batch)
        else:
            inputs = rng.standard_normal((batch, 1, 8, 8))
            labels = rng.integers(0, 4, batch)
        files.append((inputs, labels))
    return files


def both_engines(model_fn):
    looped = ModelGradientComputer(model_fn(), engine="looped")
    stacked = ModelGradientComputer(model_fn(), engine="stacked")
    return looped, stacked


@pytest.mark.parametrize("num_files", FILE_COUNTS)
@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_stacked_engine_bit_identical(model_name, num_files):
    model_fn, kind = MODELS[model_name]
    looped, stacked = both_engines(model_fn)
    params = looped.initial_params()
    files = make_files(kind, num_files)

    loop_grads, loop_losses = looped.batched(params, files)
    stack_grads, stack_losses = stacked.batched(params, files)

    assert looped.last_engine == "looped"
    assert stacked.last_engine == "stacked"
    assert stack_grads.dtype == np.float64 and stack_grads.shape == loop_grads.shape
    assert np.array_equal(loop_grads, stack_grads)
    assert np.array_equal(loop_losses, stack_losses)


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_stacked_rows_match_single_file_oracle(model_name):
    """Every stacked row equals what the per-file ``__call__`` oracle returns."""
    model_fn, kind = MODELS[model_name]
    computer = ModelGradientComputer(model_fn())
    params = computer.initial_params()
    files = make_files(kind, 4)
    grads, losses = computer.batched(params, files)
    assert computer.last_engine == "stacked"
    for i, (inputs, labels) in enumerate(files):
        gradient, loss = computer(params, inputs, labels)
        assert np.array_equal(grads[i], gradient)
        assert losses[i] == loss


def test_batchnorm_running_stats_match_looped_order():
    """Sequential per-file running-stat updates replay bit-identically."""
    model_fn = MODELS["mlp_bn"][0]
    looped, stacked = both_engines(model_fn)
    params = looped.initial_params()
    files = make_files("dense", 7)
    looped.batched(params, files)
    stacked.batched(params, files)
    for l_layer, s_layer in zip(looped.model.layers, stacked.model.layers):
        if hasattr(l_layer, "running_mean"):
            assert np.array_equal(l_layer.running_mean, s_layer.running_mean)
            assert np.array_equal(l_layer.running_var, s_layer.running_var)


def test_ragged_files_fall_back_to_looped():
    model_fn, kind = MODELS["mlp"]
    looped, stacked = both_engines(model_fn)
    params = looped.initial_params()
    files = make_files(kind, 4)
    # Odd-size last file: shapes are no longer uniform.
    rng = np.random.default_rng(9)
    files[-1] = (rng.standard_normal((3, 30)), rng.integers(0, 5, 3))

    loop_grads, loop_losses = looped.batched(params, files)
    stack_grads, stack_losses = stacked.batched(params, files)
    assert stacked.last_engine == "looped"
    assert np.array_equal(loop_grads, stack_grads)
    assert np.array_equal(loop_losses, stack_losses)


def test_unsupported_layer_falls_back_to_looped():
    def model_fn():
        model = build_mlp(30, 5, hidden=(16,), seed=3)
        # Dropout has no stacked rule (per-file RNG draw order); inserting it
        # in eval-equivalent position still forces the fallback.
        layers = list(model.layers)
        layers.insert(1, Dropout(0.0))
        return Sequential(layers, name="mlp+dropout")

    looped, stacked = both_engines(model_fn)
    assert not stacked.model.supports_per_file()
    params = looped.initial_params()
    files = make_files("dense", 4)
    loop_grads, loop_losses = looped.batched(params, files)
    stack_grads, stack_losses = stacked.batched(params, files)
    assert stacked.last_engine == "looped"
    assert np.array_equal(loop_grads, stack_grads)
    assert np.array_equal(loop_losses, stack_losses)


def test_stacked_pair_input_uses_stacked_engine():
    """The (stacked inputs, stacked labels) calling form hits the fast path."""
    model_fn, kind = MODELS["mlp"]
    computer = ModelGradientComputer(model_fn())
    params = computer.initial_params()
    files = make_files(kind, 4)
    stacked_inputs = np.stack([inputs for inputs, _ in files])
    stacked_labels = np.stack([labels for _, labels in files])
    grads_pair, losses_pair = computer.batched(params, (stacked_inputs, stacked_labels))
    assert computer.last_engine == "stacked"
    grads_list, losses_list = computer.batched(params, files)
    assert np.array_equal(grads_pair, grads_list)
    assert np.array_equal(losses_pair, losses_list)


def test_per_file_workspace_is_written_in_place():
    model_fn, kind = MODELS["mlp"]
    model = model_fn()
    loss = SoftmaxCrossEntropy()
    files = make_files(kind, 3)
    x = np.stack([inputs for inputs, _ in files])
    y = np.stack([labels for _, labels in files])
    workspace = np.full((3, model.num_parameters()), np.nan)
    losses, grads = model.per_file_loss_and_gradients(x, y, loss, out=workspace)
    assert grads is workspace
    assert not np.isnan(workspace).any()
    assert losses.shape == (3,)

    with pytest.raises(ConfigurationError):
        model.per_file_loss_and_gradients(
            x, y, loss, out=np.empty((3, model.num_parameters() + 1))
        )
    with pytest.raises(ConfigurationError):
        model.per_file_loss_and_gradients(
            x, y, loss, out=np.empty((3, model.num_parameters()), dtype=np.float32)
        )


def test_per_file_rejects_unsupported_model():
    model = Sequential([Dropout(0.5), *build_mlp(30, 5, hidden=(16,)).layers])
    with pytest.raises(ConfigurationError, match="Dropout"):
        model.per_file_loss_and_gradients(
            np.zeros((2, 4, 30)), np.zeros((2, 4), dtype=np.int64), SoftmaxCrossEntropy()
        )


def test_batched_rejects_empty_files_both_engines():
    for engine in ("stacked", "looped"):
        computer = ModelGradientComputer(MODELS["mlp"][0](), engine=engine)
        params = computer.initial_params()
        files = make_files("dense", 2)
        files[1] = (np.empty((0, 30)), np.empty(0, dtype=np.int64))
        with pytest.raises(TrainingError, match="empty file"):
            computer.batched(params, files)


def test_unknown_engine_rejected():
    with pytest.raises(TrainingError, match="unknown gradient engine"):
        ModelGradientComputer(MODELS["mlp"][0](), engine="warp")


def test_mse_per_file_matches_looped():
    loss = MeanSquaredError()
    rng = np.random.default_rng(2)
    predictions = rng.standard_normal((5, 6, 3))
    targets = rng.standard_normal((5, 6, 3))
    values = loss.per_file_value(predictions, targets)
    grads = loss.per_file_gradient(predictions, targets)
    for i in range(5):
        assert values[i] == loss.value(predictions[i], targets[i])
        assert np.array_equal(grads[i], loss.gradient(predictions[i], targets[i]))


@pytest.mark.parametrize(
    "compressor_fn",
    [
        IdentityCompressor,
        SignCompressor,
        lambda: TopKCompressor(0.1),
        lambda: RandomKCompressor(0.1, seed=5),
        lambda: QuantizedCompressor(4, seed=5),
    ],
    ids=["identity", "sign", "topk", "randomk", "quantized"],
)
def test_compress_matrix_matches_per_row_loop(compressor_fn):
    rng = np.random.default_rng(3)
    matrix = rng.standard_normal((6, 40))
    # Stochastic compressors consume RNG row by row; the reference loop uses
    # a twin instance with the same seed so both see the same stream.
    twin = compressor_fn()
    reference = np.vstack([twin(row).vector for row in matrix])
    assert np.array_equal(compressor_fn().compress_matrix(matrix), reference)


def test_compress_matrix_rejects_bad_shapes():
    compressor = TopKCompressor(0.5)
    with pytest.raises(ConfigurationError):
        compressor.compress_matrix(np.zeros(4))
    with pytest.raises(ConfigurationError):
        compressor.compress_matrix(np.zeros((0, 4)))
    with pytest.raises(ConfigurationError):
        compressor.compress_matrix(np.zeros((4, 0)))
