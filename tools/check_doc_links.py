#!/usr/bin/env python
"""Check relative links and anchors in the repo's markdown docs.

Scans the documentation set for markdown links ``[text](target)`` and fails
when a relative target does not exist on disk, or when a ``#anchor`` does
not match any heading of the target file (GitHub slug rules).  External
``http(s)://`` and ``mailto:`` links are skipped — CI must not depend on
the network.  Fenced code blocks are ignored so shell snippets containing
brackets cannot produce false positives.

Usage::

    python tools/check_doc_links.py            # check the default doc set
    python tools/check_doc_links.py FILE...    # check specific files
"""

from __future__ import annotations

import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from docs_common import github_anchor  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

DEFAULT_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/API.md",
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def anchors_of(path: pathlib.Path) -> set[str]:
    text = _FENCE.sub("", path.read_text())
    return {github_anchor(match.group(1)) for match in _HEADING.finditer(text)}


def check_file(path: pathlib.Path) -> list[str]:
    problems: list[str] = []
    text = _FENCE.sub("", path.read_text())
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw_path, _, anchor = target.partition("#")
        if raw_path:
            resolved = (path.parent / raw_path).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link {target!r} (missing {resolved})")
                continue
        else:
            resolved = path
        if anchor:
            if resolved.suffix != ".md":
                problems.append(
                    f"{path}: anchor link {target!r} into non-markdown file"
                )
            elif anchor not in anchors_of(resolved):
                problems.append(
                    f"{path}: broken anchor {target!r} (no heading slug "
                    f"{anchor!r} in {resolved.name})"
                )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [pathlib.Path(a) for a in argv] if argv else [
        REPO_ROOT / name for name in DEFAULT_FILES
    ]
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"missing documentation file: {path}")
            continue
        problems.extend(check_file(path))
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    print(f"checked {len(files)} files, all links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
