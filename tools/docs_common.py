"""Helpers shared by the documentation tools.

Both ``gen_api_docs.py`` (which *writes* anchors into docs/API.md) and
``check_doc_links.py`` (which *validates* them) must agree on the slug
rule, so it lives in exactly one place.
"""

from __future__ import annotations

import re

__all__ = ["github_anchor"]


def github_anchor(heading: str) -> str:
    """GitHub's slug for a markdown heading (enough for our headings)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")
