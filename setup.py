"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools/pip cannot
build PEP 660 editable wheels (e.g. offline machines without the ``wheel``
package), via the legacy ``--no-use-pep517`` code path.
"""

from setuptools import setup

setup()
