"""Benchmark: paper Figure 8 — reversed-gradient attack, Multi-Krum defenses.

DETOX cannot be paired with Multi-Krum at q = 9 (it would need 2c + 3 = 9 > 5
groups), so that curve exists only for the baseline and ByzShield.
"""

import pytest

from benchmarks.figure_helpers import (
    check_figure_invariants,
    run_figure,
    save_figure_results,
)
from repro.experiments.accuracy import figure_spec


@pytest.mark.benchmark(group="figures")
def test_fig8_reversed_gradient_multikrum_defenses(benchmark, results_dir):
    spec = figure_spec("fig8")
    detox_qs = {run.num_byzantine for run in spec.runs if run.pipeline == "detox"}
    assert 9 not in detox_qs

    histories = benchmark.pedantic(run_figure, args=("fig8",), rounds=1, iterations=1)
    check_figure_invariants("fig8", histories)
    save_figure_results(
        results_dir,
        "fig8",
        "Figure 8: reversed-gradient attack, Multi-Krum-based defenses",
        histories,
    )
    assert histories["Multi-Krum, q=9"].distortion_fractions.mean() == pytest.approx(9 / 25)
    assert histories["ByzShield, q=9"].distortion_fractions.mean() == pytest.approx(0.36)
