"""Micro-benchmarks of the primitives that dominate the pipelines' runtime.

Unlike the table/figure benchmarks (which run once, pedantically), these use
pytest-benchmark's timing loop so regressions in the hot paths — robust
aggregation over stacked gradients, majority voting, the worst-case distortion
search and the assignment-graph construction — show up in the benchmark report.
"""

import numpy as np
import pytest

from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.krum import MultiKrumAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.aggregation.majority import majority_vote
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.core.distortion import max_distortion_exhaustive, max_distortion_local_search

RNG = np.random.default_rng(0)
VOTES_25 = RNG.standard_normal((25, 20_000))
VOTES_SMALL = RNG.standard_normal((15, 5_000))
FILE_COPIES = [VOTES_SMALL[0].copy(), VOTES_SMALL[0].copy(), VOTES_SMALL[1].copy()]


@pytest.mark.benchmark(group="micro-aggregation")
def test_median_aggregation_speed(benchmark):
    result = benchmark(CoordinateWiseMedian(), VOTES_25)
    assert result.shape == (20_000,)


@pytest.mark.benchmark(group="micro-aggregation")
def test_multi_krum_aggregation_speed(benchmark):
    aggregator = MultiKrumAggregator(num_byzantine=5)
    result = benchmark(aggregator, VOTES_25)
    assert result.shape == (20_000,)


@pytest.mark.benchmark(group="micro-aggregation")
def test_bulyan_aggregation_speed(benchmark):
    aggregator = BulyanAggregator(num_byzantine=5)
    result = benchmark(aggregator, VOTES_25)
    assert result.shape == (20_000,)


@pytest.mark.benchmark(group="micro-aggregation")
def test_majority_vote_speed(benchmark):
    winner, count = benchmark(majority_vote, FILE_COPIES)
    assert count == 2


@pytest.mark.benchmark(group="micro-assignment")
def test_mols_assignment_construction_speed(benchmark):
    assignment = benchmark(lambda: MOLSAssignment(load=7, replication=5).build())
    assert assignment.num_workers == 35


@pytest.mark.benchmark(group="micro-assignment")
def test_ramanujan_assignment_construction_speed(benchmark):
    assignment = benchmark(lambda: RamanujanAssignment(m=5, s=5).build())
    assert assignment.num_workers == 25


@pytest.mark.benchmark(group="micro-distortion")
def test_exhaustive_distortion_search_speed(benchmark):
    assignment = MOLSAssignment(load=5, replication=3).assignment
    result = benchmark(max_distortion_exhaustive, assignment, 5)
    assert result.c_max == 8


@pytest.mark.benchmark(group="micro-distortion")
def test_local_search_distortion_speed(benchmark):
    assignment = MOLSAssignment(load=7, replication=5).assignment
    result = benchmark.pedantic(
        max_distortion_local_search, args=(assignment, 10), kwargs={"seed": 0}, rounds=3, iterations=1
    )
    assert result.c_max >= 10
