"""Micro-benchmarks of the primitives that dominate the pipelines' runtime.

Unlike the table/figure benchmarks (which run once, pedantically), these use
pytest-benchmark's timing loop so regressions in the hot paths — robust
aggregation over stacked gradients, majority voting, the worst-case distortion
search and the assignment-graph construction — show up in the benchmark report.
"""

import os
import time

import numpy as np
import pytest

from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.krum import MultiKrumAggregator
from repro.aggregation.majority import (
    _reference_exact_majority,
    majority_vote,
    majority_vote_tensor,
)
from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.core.distortion import max_distortion_exhaustive, max_distortion_local_search
from repro.nn.models import build_mlp
from repro.training.gradients import ModelGradientComputer

RNG = np.random.default_rng(0)
VOTES_25 = RNG.standard_normal((25, 20_000))
VOTES_SMALL = RNG.standard_normal((15, 5_000))
FILE_COPIES = [VOTES_SMALL[0].copy(), VOTES_SMALL[0].copy(), VOTES_SMALL[1].copy()]


def make_round_tensor(num_files=25, replication=5, dim=10_000, corrupted=(0, 10, 20)):
    """An (f, r, d) round at the paper's K=25 scale: honest replicas plus a
    colluding payload in 2 of the r copies of the corrupted files."""
    rng = np.random.default_rng(7)
    honest = rng.standard_normal((num_files, dim))
    values = np.repeat(honest[:, None, :], replication, axis=1)
    payload = rng.standard_normal(dim)
    for i in corrupted:
        values[i, :2] = payload
    return values


ROUND_TENSOR = make_round_tensor()


def reference_majority_all_files(values):
    """The original dict-of-bytes implementation, file by file."""
    return [_reference_exact_majority(values[i]) for i in range(values.shape[0])]


@pytest.mark.benchmark(group="micro-aggregation")
def test_median_aggregation_speed(benchmark):
    result = benchmark(CoordinateWiseMedian(), VOTES_25)
    assert result.shape == (20_000,)


@pytest.mark.benchmark(group="micro-aggregation")
def test_multi_krum_aggregation_speed(benchmark):
    aggregator = MultiKrumAggregator(num_byzantine=5)
    result = benchmark(aggregator, VOTES_25)
    assert result.shape == (20_000,)


@pytest.mark.benchmark(group="micro-aggregation")
def test_bulyan_aggregation_speed(benchmark):
    aggregator = BulyanAggregator(num_byzantine=5)
    result = benchmark(aggregator, VOTES_25)
    assert result.shape == (20_000,)


@pytest.mark.benchmark(group="micro-aggregation")
def test_majority_vote_speed(benchmark):
    winner, count = benchmark(majority_vote, FILE_COPIES)
    assert count == 2


@pytest.mark.benchmark(group="micro-vote-tensor")
def test_majority_vote_tensor_exact_speed(benchmark):
    winners, counts = benchmark(majority_vote_tensor, ROUND_TENSOR)
    assert winners.shape == (25, 10_000)
    assert counts[0] == 3  # corrupted file: 3 honest copies beat 2 payloads


@pytest.mark.benchmark(group="micro-vote-tensor")
def test_majority_vote_tensor_tolerance_speed(benchmark):
    winners, _ = benchmark(majority_vote_tensor, ROUND_TENSOR, 0.5)
    assert winners.shape == (25, 10_000)


@pytest.mark.benchmark(group="micro-vote-tensor")
def test_majority_vote_legacy_per_file_speed(benchmark):
    results = benchmark(reference_majority_all_files, ROUND_TENSOR)
    assert len(results) == 25


def test_vectorized_majority_speedup_at_paper_scale():
    """Acceptance gate: the vectorized kernel is >= 3x the per-file legacy
    loop at (f=25, r=5, d=10k).  Interleaved min-of-N timing so background
    load hits both paths equally, with retries so a noisy runner only fails
    when the kernel has genuinely regressed."""
    winners, counts = majority_vote_tensor(ROUND_TENSOR)
    reference = reference_majority_all_files(ROUND_TENSOR)
    for i in range(25):
        assert np.array_equal(winners[i], reference[i][0])
        assert counts[i] == reference[i][1]

    def measure_speedup():
        tensor_times, legacy_times = [], []
        for _ in range(50):
            start = time.perf_counter()
            majority_vote_tensor(ROUND_TENSOR)
            tensor_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            reference_majority_all_files(ROUND_TENSOR)
            legacy_times.append(time.perf_counter() - start)
        return min(legacy_times) / min(tensor_times)

    speedups = []
    for _ in range(3):
        speedups.append(measure_speedup())
        if speedups[-1] >= 3.0:
            break
    assert max(speedups) >= 3.0, (
        f"vectorized majority vote only {max(speedups):.2f}x faster "
        f"(attempts: {[f'{s:.2f}' for s in speedups]})"
    )


def test_stacked_gradient_engine_speedup_at_paper_scale():
    """Acceptance gate: the stacked per-file gradient engine is >= 3x the
    looped engine at (f=25, mlp, d~=11k) — the paper's K=25 regime with
    small equal-size batch slices.  Interleaved min-of-N timing with retries,
    mirroring the majority-vote gate above."""
    def make_model():
        return build_mlp(100, 10, hidden=(64, 64), seed=0)

    rng = np.random.default_rng(11)
    files = [(rng.standard_normal((8, 100)), rng.integers(0, 10, 8)) for _ in range(25)]
    looped = ModelGradientComputer(make_model(), engine="looped")
    stacked = ModelGradientComputer(make_model(), engine="stacked")
    params = looped.initial_params()

    loop_grads, loop_losses = looped.batched(params, files)
    stack_grads, stack_losses = stacked.batched(params, files)
    assert stacked.last_engine == "stacked"
    assert np.array_equal(loop_grads, stack_grads)
    assert np.array_equal(loop_losses, stack_losses)

    def measure_speedup():
        stacked_times, looped_times = [], []
        for _ in range(30):
            start = time.perf_counter()
            stacked.batched(params, files)
            stacked_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            looped.batched(params, files)
            looped_times.append(time.perf_counter() - start)
        return min(looped_times) / min(stacked_times)

    speedups = []
    for _ in range(3):
        speedups.append(measure_speedup())
        if speedups[-1] >= 3.0:
            break
    assert max(speedups) >= 3.0, (
        f"stacked gradient engine only {max(speedups):.2f}x faster "
        f"(attempts: {[f'{s:.2f}' for s in speedups]})"
    )


def test_cow_replication_memory_reduction_at_paper_scale():
    """Acceptance gate: the copy-on-write round holds >= 2x less peak memory
    than the materialized round at (f=25, r=5, d=11k) while producing a
    bit-identical aggregate.  tracemalloc is deterministic, so no retries:
    the materialized path must allocate the full (f, r, d) cube while the
    COW path carries the (f, d) base plus only the attacked slots."""
    import tracemalloc

    from repro.core.pipelines import ByzShieldPipeline
    from repro.core.vote_tensor import VoteTensor

    assignment = RamanujanAssignment(m=5, s=5).assignment
    dim = 11_274
    rng = np.random.default_rng(0)
    honest = rng.standard_normal((assignment.num_files, dim))
    workers = assignment.worker_slot_matrix()
    replication = workers.shape[1]
    files, slots = np.nonzero(np.isin(workers, (0, 7)))  # q=2 byzantine
    payload = rng.standard_normal((files.size, dim))
    pipeline = ByzShieldPipeline(assignment, validate=False)

    def cow_round():
        tensor = VoteTensor.from_honest(assignment, honest)
        tensor.write_slots(files, slots, payload)
        return pipeline.aggregate_tensor(tensor)

    def materialized_round():
        tensor = VoteTensor(
            np.repeat(honest[:, None, :], replication, axis=1), workers
        )
        tensor.write_slots(files, slots, payload)
        return pipeline.aggregate_tensor(tensor)

    assert np.array_equal(cow_round(), materialized_round())

    def peak_bytes(fn):
        fn()  # warm any lazy caches so only steady-state allocations count
        tracemalloc.start()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    cow_peak = peak_bytes(cow_round)
    materialized_peak = peak_bytes(materialized_round)
    ratio = materialized_peak / cow_peak
    assert ratio >= 2.0, (
        f"copy-on-write round only {ratio:.2f}x smaller peak "
        f"({cow_peak / 1e6:.2f} MB vs {materialized_peak / 1e6:.2f} MB)"
    )


def test_blockwise_vote_memory_reduction_at_large_r():
    """Acceptance gate: the coordinate-blockwise majority kernel holds < 0.25x
    the monolithic kernel's peak memory at (f=25, r=64, d=200k) — the
    beyond-RAM regime the hierarchical/blockwise path targets — while staying
    bit-identical.  The monolithic labeler materializes O(f.r.d) comparison
    temporaries; the blockwise sweep streams O(f.r.block) instead.
    tracemalloc is deterministic, so no retries."""
    import tracemalloc

    f, r, dim = 25, 64, 200_000
    rng = np.random.default_rng(7)
    honest = rng.standard_normal((f, dim))
    values = np.repeat(honest[:, None, :], r, axis=1)
    payload = rng.standard_normal(dim)
    for i in (0, 10, 20):
        values[i, :20] = payload  # minority payload: honest copies still win

    mono_w, mono_c = majority_vote_tensor(values)
    blk_w, blk_c = majority_vote_tensor(values, block_size=4096)
    assert np.array_equal(blk_w, mono_w)
    assert np.array_equal(blk_c, mono_c)
    assert mono_c[0] == r - 20

    def peak_bytes(fn):
        fn()  # warm lazy caches (hash weights) so steady-state peaks compare
        tracemalloc.start()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    mono_peak = peak_bytes(lambda: majority_vote_tensor(values))
    blk_peak = peak_bytes(lambda: majority_vote_tensor(values, block_size=4096))
    ratio = blk_peak / mono_peak
    assert ratio < 0.25, (
        f"blockwise vote peak is {ratio:.2f}x the monolithic peak "
        f"({blk_peak / 1e6:.1f} MB vs {mono_peak / 1e6:.1f} MB)"
    )


@pytest.mark.benchmark(group="micro-gradient-engine")
def test_stacked_gradient_engine_mlp_f25_speed(benchmark):
    computer = ModelGradientComputer(build_mlp(100, 10, hidden=(64, 64), seed=0))
    params = computer.initial_params()
    rng = np.random.default_rng(11)
    files = [(rng.standard_normal((8, 100)), rng.integers(0, 10, 8)) for _ in range(25)]
    grads, losses = benchmark(computer.batched, params, files)
    assert computer.last_engine == "stacked"
    assert grads.shape == (25, computer.dim)
    assert losses.shape == (25,)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scaled_catalog_specs():
    """The 24-scenario catalog with a longer training schedule, so each
    scenario's compute dominates process-pool startup and IPC."""
    from repro.scenarios.catalog import all_scenarios
    from repro.scenarios.spec import ScenarioSpec

    specs = []
    for spec in all_scenarios():
        data = spec.to_dict()
        data["training"] = {**data["training"], "num_iterations": 40, "eval_every": 20}
        specs.append(ScenarioSpec.from_dict(data))
    return specs


def test_campaign_parallel_traces_match_golden():
    """Acceptance gate (identity half): a 4-process campaign run of the raw
    24-scenario catalog produces RunTraces bit-identical to the committed
    goldens — parallelism changes wall-clock time and nothing else."""
    from repro.campaigns.executor import run_specs
    from repro.scenarios.catalog import all_scenarios, scenario_names
    from repro.scenarios.golden import golden_path
    from repro.scenarios.trace import RunTrace

    records = run_specs(all_scenarios(), processes=4)
    for name, record in zip(scenario_names(), records):
        golden = RunTrace.from_json_file(golden_path(name))
        RunTrace.from_dict(record.trace).assert_matches(golden)


def test_campaign_parallel_speedup_on_catalog():
    """Acceptance gate (speed half): running the 24-scenario catalog through
    the campaign executor at 4 processes is >= 2x faster than serial.  The
    catalog's training schedule is lengthened so per-scenario compute
    dominates pool startup (the goldens' 4-iteration runs are deliberately
    tiny); best-of-N timing with retries, mirroring the kernel gates above.
    Needs real parallel hardware, so it skips on boxes with < 4 cores."""
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"needs >= 4 usable cores for a 4-process speedup, have {cores}")
    from repro.campaigns.executor import run_specs

    specs = _scaled_catalog_specs()
    serial_records = run_specs(specs, processes=0)
    parallel_records = run_specs(specs, processes=4)
    assert [r.trace for r in parallel_records] == [r.trace for r in serial_records]

    def measure_speedup():
        start = time.perf_counter()
        run_specs(specs, processes=0)
        serial = time.perf_counter() - start
        start = time.perf_counter()
        run_specs(specs, processes=4)
        parallel = time.perf_counter() - start
        return serial / parallel

    speedups = []
    for _ in range(3):
        speedups.append(measure_speedup())
        if speedups[-1] >= 2.0:
            break
    assert max(speedups) >= 2.0, (
        f"4-process campaign run only {max(speedups):.2f}x faster than serial "
        f"(attempts: {[f'{s:.2f}' for s in speedups]})"
    )


@pytest.mark.benchmark(group="micro-assignment")
def test_mols_assignment_construction_speed(benchmark):
    assignment = benchmark(lambda: MOLSAssignment(load=7, replication=5).build())
    assert assignment.num_workers == 35


@pytest.mark.benchmark(group="micro-assignment")
def test_ramanujan_assignment_construction_speed(benchmark):
    assignment = benchmark(lambda: RamanujanAssignment(m=5, s=5).build())
    assert assignment.num_workers == 25


@pytest.mark.benchmark(group="micro-distortion")
def test_exhaustive_distortion_search_speed(benchmark):
    assignment = MOLSAssignment(load=5, replication=3).assignment
    result = benchmark(max_distortion_exhaustive, assignment, 5)
    assert result.c_max == 8


@pytest.mark.benchmark(group="micro-distortion")
def test_local_search_distortion_speed(benchmark):
    assignment = MOLSAssignment(load=7, replication=5).assignment
    result = benchmark.pedantic(
        max_distortion_local_search, args=(assignment, 10), kwargs={"seed": 0}, rounds=3, iterations=1
    )
    assert result.c_max >= 10
