"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and saves a
plain-text rendering under ``benchmarks/results/`` so the numbers can be
inspected (and compared against EXPERIMENTS.md) after a run.

Everything collected from this directory is marked ``bench`` and deselected
by default (``addopts = -m "not bench"`` in pyproject.toml), keeping tier-1
fast; CI runs the benchmarks in a dedicated job with ``-m bench``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_BENCH_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(config, items):
    """Tag every test under benchmarks/ with the ``bench`` marker."""
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory receiving the rendered tables/series produced by benchmarks."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_text(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write one benchmark's rendered output to ``benchmarks/results/<name>.txt``."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
