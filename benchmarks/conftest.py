"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and saves a
plain-text rendering under ``benchmarks/results/`` so the numbers can be
inspected (and compared against EXPERIMENTS.md) after a run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory receiving the rendered tables/series produced by benchmarks."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_text(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write one benchmark's rendered output to ``benchmarks/results/<name>.txt``."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
