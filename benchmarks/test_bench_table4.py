"""Benchmark: paper Table 4 — Ramanujan Case 2 (K, f, l, r) = (25, 25, 5, 5), q = 3..12.

Every row is computed with the exhaustive optimizer (the largest search space
is C(25, 12) ≈ 5.2M Byzantine sets) and compared against the published values.
This is the most expensive table benchmark (~30 s).
"""

import pytest

from benchmarks.conftest import save_text
from repro.experiments.paper_reference import TABLE4
from repro.experiments.report import format_rows
from repro.experiments.tables import generate_table4


@pytest.mark.benchmark(group="tables")
def test_table4_distortion_fractions(benchmark, results_dir):
    rows = benchmark.pedantic(generate_table4, rounds=1, iterations=1)
    save_text(
        results_dir, "table4", format_rows(rows, title="Table 4 (Ramanujan Case 2, r=l=5)")
    )
    assert [row["q"] for row in rows] == sorted(TABLE4)
    for row in rows:
        c_max, eps, eps_base, eps_frc, gamma = TABLE4[row["q"]]
        assert row["exact"], "Table 4 rows must come from exhaustive search"
        assert row["c_max"] == c_max
        assert row["epsilon_byzshield"] == pytest.approx(eps, abs=0.005)
        assert row["epsilon_baseline"] == pytest.approx(eps_base, abs=0.005)
        assert row["epsilon_frc"] == pytest.approx(eps_frc, abs=0.005)
        assert row["gamma"] == pytest.approx(gamma, abs=0.01)
