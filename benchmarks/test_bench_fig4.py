"""Benchmark: paper Figure 4 — ALIE attack, Multi-Krum-based defenses, K = 25."""

import pytest

from benchmarks.figure_helpers import (
    check_figure_invariants,
    run_figure,
    save_figure_results,
)


@pytest.mark.benchmark(group="figures")
def test_fig4_alie_multikrum_defenses(benchmark, results_dir):
    histories = benchmark.pedantic(run_figure, args=("fig4",), rounds=1, iterations=1)
    check_figure_invariants("fig4", histories)
    save_figure_results(
        results_dir, "fig4", "Figure 4: ALIE attack, Multi-Krum-based defenses", histories
    )
    assert histories["Multi-Krum, q=5"].distortion_fractions.mean() == pytest.approx(0.2)
    assert histories["ByzShield, q=3"].distortion_fractions.mean() == pytest.approx(0.04)
