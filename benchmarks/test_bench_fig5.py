"""Benchmark: paper Figure 5 — constant attack, signSGD-based defenses, K = 25.

The constant attack is paired with sign-majority defenses because sign flips
alone (reversed gradient) rarely change a coordinate's sign majority; the
constant payload does.
"""

import pytest

from benchmarks.figure_helpers import (
    check_figure_invariants,
    run_figure,
    save_figure_results,
)


@pytest.mark.benchmark(group="figures")
def test_fig5_constant_signsgd_defenses(benchmark, results_dir):
    histories = benchmark.pedantic(run_figure, args=("fig5",), rounds=1, iterations=1)
    check_figure_invariants("fig5", histories)
    save_figure_results(
        results_dir, "fig5", "Figure 5: constant attack, signSGD-based defenses", histories
    )
    assert histories["signSGD, q=3"].distortion_fractions.mean() == pytest.approx(3 / 25)
    assert histories["ByzShield, q=5"].distortion_fractions.mean() == pytest.approx(0.08)
