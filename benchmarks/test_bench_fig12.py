"""Benchmark: paper Figure 12 — per-iteration time breakdown.

Reproduces the *shape* of the paper's Figure 12 with the analytic cluster cost
model: ByzShield pays the largest communication (one message per file copy per
worker) and the largest total, both redundancy schemes pay r x the baseline's
computation, and the baseline's aggregation is the cheapest.  The absolute
seconds depend on the cost-model coefficients, not on EC2 hardware.
"""

import pytest

from benchmarks.conftest import save_text
from repro.experiments.paper_reference import PAPER_TRAINING_HOURS
from repro.experiments.report import format_rows
from repro.experiments.timing import generate_figure12


@pytest.mark.benchmark(group="figures")
def test_fig12_per_iteration_time_breakdown(benchmark, results_dir):
    rows = benchmark.pedantic(generate_figure12, rounds=1, iterations=1)
    save_text(
        results_dir,
        "fig12",
        format_rows(rows, title="Figure 12: per-iteration time breakdown (cost model)")
        + "\n\npaper full-training wall-clock (hours): "
        + str(PAPER_TRAINING_HOURS),
    )
    by_scheme = {row["scheme"]: row for row in rows}
    assert set(by_scheme) == {"Median", "ByzShield", "DETOX-MoM"}
    # Ordering of totals matches the paper: median < DETOX-MoM < ByzShield.
    assert by_scheme["Median"]["total"] < by_scheme["DETOX-MoM"]["total"]
    assert by_scheme["DETOX-MoM"]["total"] < by_scheme["ByzShield"]["total"]
    # Communication: ByzShield transmits l=5 gradients per worker, others one.
    assert by_scheme["ByzShield"]["communication"] == pytest.approx(
        5 * by_scheme["Median"]["communication"], rel=1e-6
    )
    # Computation: redundancy schemes pay r=5 times the baseline.
    assert by_scheme["ByzShield"]["computation"] == pytest.approx(
        5 * by_scheme["Median"]["computation"], rel=1e-6
    )
