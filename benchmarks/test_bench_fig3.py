"""Benchmark: paper Figure 3 — ALIE attack, Bulyan-based defenses, K = 25.

Curves: baseline Bulyan and ByzShield (vote + median), at q = 3 and q = 5.
The paper's point is that Bulyan's ``n >= 4q + 3`` requirement caps how far it
can be pushed, while ByzShield keeps its small distortion fraction.
"""

import pytest

from benchmarks.figure_helpers import (
    check_figure_invariants,
    run_figure,
    save_figure_results,
)


@pytest.mark.benchmark(group="figures")
def test_fig3_alie_bulyan_defenses(benchmark, results_dir):
    histories = benchmark.pedantic(run_figure, args=("fig3",), rounds=1, iterations=1)
    check_figure_invariants("fig3", histories)
    save_figure_results(
        results_dir, "fig3", "Figure 3: ALIE attack, Bulyan-based defenses", histories
    )
    assert histories["Bulyan, q=5"].distortion_fractions.mean() == pytest.approx(0.2)
    assert histories["ByzShield, q=5"].distortion_fractions.mean() == pytest.approx(0.08)
