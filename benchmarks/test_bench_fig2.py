"""Benchmark: paper Figure 2 — ALIE attack, median-based defenses, K = 25.

Curves: baseline coordinate-wise median, ByzShield (Ramanujan Case 2, r=l=5)
with median, and DETOX with median-of-means, each at q = 3 and q = 5, all
under the omniscient worst-case Byzantine selection.
"""

import pytest

from benchmarks.figure_helpers import (
    check_figure_invariants,
    run_figure,
    save_figure_results,
)


@pytest.mark.benchmark(group="figures")
def test_fig2_alie_median_defenses(benchmark, results_dir):
    histories = benchmark.pedantic(run_figure, args=("fig2",), rounds=1, iterations=1)
    check_figure_invariants("fig2", histories)
    save_figure_results(
        results_dir, "fig2", "Figure 2: ALIE attack, median-based defenses", histories
    )
    # ByzShield corrupts 1/25 (q=3) and 2/25 (q=5) of the file gradients,
    # versus 0.2 for DETOX's grouping under the omniscient attack.
    assert histories["ByzShield, q=3"].distortion_fractions.mean() == pytest.approx(0.04)
    assert histories["ByzShield, q=5"].distortion_fractions.mean() == pytest.approx(0.08)
    assert histories["DETOX-MoM, q=5"].distortion_fractions.mean() == pytest.approx(0.2)
