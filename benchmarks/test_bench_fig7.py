"""Benchmark: paper Figure 7 — reversed-gradient attack, Bulyan defenses.

Bulyan cannot be applied at q = 9 (it would need 4q + 3 = 39 > 25 votes), so
that curve exists only for ByzShield — the same asymmetry as the paper.
"""

import pytest

from benchmarks.figure_helpers import (
    check_figure_invariants,
    run_figure,
    save_figure_results,
)
from repro.experiments.accuracy import figure_spec


@pytest.mark.benchmark(group="figures")
def test_fig7_reversed_gradient_bulyan_defenses(benchmark, results_dir):
    spec = figure_spec("fig7")
    # The q=9 configuration is only present for ByzShield (Bulyan inapplicable).
    bulyan_qs = {run.num_byzantine for run in spec.runs if run.defense == "bulyan"}
    assert 9 not in bulyan_qs

    histories = benchmark.pedantic(run_figure, args=("fig7",), rounds=1, iterations=1)
    check_figure_invariants("fig7", histories)
    save_figure_results(
        results_dir,
        "fig7",
        "Figure 7: reversed-gradient attack, Bulyan-based defenses",
        histories,
    )
    assert histories["ByzShield, q=9"].distortion_fractions.mean() == pytest.approx(0.36)
