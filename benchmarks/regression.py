"""Benchmark regression harness for the aggregation hot paths.

Runs the micro kernels that dominate the round data path, writes a
``benchmarks/results/BENCH_<date>.json`` snapshot (best-of-N seconds and
ops/second per kernel) and compares against the most recent previous
snapshot with a configurable tolerance — failing loudly when a kernel got
slower.  This seeds the repo's performance trajectory: every PR that touches
the round engine should leave a snapshot behind.

Usage::

    PYTHONPATH=src python benchmarks/regression.py             # full run + compare
    PYTHONPATH=src python benchmarks/regression.py --smoke     # quick CI sanity run
    PYTHONPATH=src python benchmarks/regression.py --check     # compare vs committed
                                                               # baseline, write nothing
    PYTHONPATH=src python benchmarks/regression.py --tolerance 0.5 --no-fail

Timing protocol: every kernel is repeated ``--rounds`` times and the *minimum*
wall time is reported (robust to background load), so snapshots from the same
machine are comparable.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.krum import MultiKrumAggregator
from repro.aggregation.majority import (
    _reference_exact_majority,
    majority_vote_tensor,
    majority_vote_votetensor,
)
from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.ramanujan import RamanujanAssignment
from repro.cluster.events import AsyncRuntime, EventDrivenRound, base_arrival_times
from repro.cluster.timing import CostModel
from repro.cluster.topology import GroupTopology, hierarchical_majority_vote
from repro.core.pipelines import ByzShieldPipeline
from repro.core.vote_tensor import VoteTensor
from repro.nn.models import build_cnn, build_mlp, build_resnet_lite
from repro.training.gradients import ModelGradientComputer

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def make_round_tensor(num_files=25, replication=5, dim=10_000, corrupted=(0, 10, 20)):
    rng = np.random.default_rng(7)
    honest = rng.standard_normal((num_files, dim))
    values = np.repeat(honest[:, None, :], replication, axis=1)
    payload = rng.standard_normal(dim)
    for i in corrupted:
        values[i, :2] = payload
    return values


def replication_round_kernels() -> dict:
    """Copy-on-write vs materialized replication through one round's PS path.

    Both kernels run the same hot-path sequence at the paper's K=25 scale
    (Ramanujan m=s=5: f=25, r=5, d = the K=25 MLP's ~11k parameters): pack
    the honest (f, d) gradients into a VoteTensor, write an adversary's
    payload into q=2 workers' slots, and aggregate through ByzShield.  The
    COW kernel replicates lazily (shared base + per-slot overrides); the
    materialized kernel builds the dense (f, r, d) cube up front, which is
    what the round loop did before copy-on-write replication.  The float32
    variants exercise the dtype seam on the same path.
    """
    assignment = RamanujanAssignment(m=5, s=5).assignment
    dim = 11_274  # parameter count of the mlp benchmarked above (d ~= 11k)
    honest64 = np.random.default_rng(3).standard_normal((assignment.num_files, dim))
    honest32 = honest64.astype(np.float32)
    workers = assignment.worker_slot_matrix()
    files, slots = np.nonzero(np.isin(workers, (0, 7)))  # q=2 byzantine workers
    payload64 = np.random.default_rng(4).standard_normal(dim)
    payload32 = payload64.astype(np.float32)
    pipeline = ByzShieldPipeline(assignment, validate=False)

    def cow_round(honest, payload):
        tensor = VoteTensor.from_honest(assignment, honest)
        tensor.write_slots(files, slots, payload)
        return pipeline.aggregate_tensor(tensor)

    def materialized_round(honest, payload):
        tensor = VoteTensor(
            np.repeat(honest[:, None, :], workers.shape[1], axis=1), workers
        )
        tensor.write_slots(files, slots, payload)
        return pipeline.aggregate_tensor(tensor)

    return {
        "replication_cow_round_f25_r5_d11k": lambda: cow_round(honest64, payload64),
        "replication_materialized_round_f25_r5_d11k": lambda: materialized_round(
            honest64, payload64
        ),
        "dtype_float32_cow_round_f25_r5_d11k": lambda: cow_round(honest32, payload32),
        "dtype_float32_materialized_round_f25_r5_d11k": lambda: materialized_round(
            honest32, payload32
        ),
    }


def event_round_kernels() -> dict:
    """Event-engine PS loop at the paper's K=25 scale (f=25, r=5, d≈11k).

    Both kernels build the round's COW vote tensor, then run the discrete-
    event collection over the unperturbed arrival schedule.  The inf-deadline
    kernel is the sync-equivalent mode (accept everything); the quorum kernel
    closes each file after 3 of its 5 copies and pays the rejection path
    (late events + slot zeroing) for the other two.
    """
    assignment = RamanujanAssignment(m=5, s=5).assignment
    dim = 11_274  # parameter count of the benchmarked K=25 MLP (d ~= 11k)
    honest = np.random.default_rng(5).standard_normal((assignment.num_files, dim))
    samples = np.full(assignment.num_files, 8.0)
    base = base_arrival_times(assignment, CostModel(), dim, samples)

    def event_round(runtime):
        tensor = VoteTensor.from_honest(assignment, honest)
        return EventDrivenRound(runtime).collect(tensor, base)

    return {
        "event_round_inf_deadline_f25_r5_d11k": lambda: event_round(AsyncRuntime()),
        "event_round_quorum3_f25_r5_d11k": lambda: event_round(
            AsyncRuntime(deadline=0.5, quorum=3)
        ),
    }


def hierarchical_vote_kernels() -> dict:
    """Flat vs hierarchical (and monolithic vs blockwise) exact vote at large r.

    The large-replication regime the two-level path targets: f=16 files, r=64
    copies each (every one of K=64 workers holds every file, FRC-style, so
    all files share one group signature), d=20k coordinates, with a colluding
    payload in 12 of the corrupted files' copies.  All four kernels produce
    bit-identical (winners, counts); they differ in wall-clock and peak
    memory — the hierarchical kernels label 8 workers per group at a time and
    the blockwise variants stream 4096-coordinate blocks, so the O(f.r.d)
    comparison temporary of the flat monolithic kernel never materializes.
    """
    f, r, dim = 16, 64, 20_000
    rng = np.random.default_rng(7)
    honest = rng.standard_normal((f, dim))
    values = np.repeat(honest[:, None, :], r, axis=1)
    payload = rng.standard_normal(dim)
    for i in (0, 5, 10):
        values[i, :12] = payload
    workers = np.broadcast_to(np.arange(r, dtype=np.int64), (f, r)).copy()
    tensor = VoteTensor(values, workers)
    topology = GroupTopology(r, 8)

    return {
        "blockwise_vote_flat_mono_f16_r64_d20k": lambda: majority_vote_votetensor(
            tensor, 0.0
        ),
        "blockwise_vote_flat_bs4k_f16_r64_d20k": lambda: majority_vote_votetensor(
            tensor, 0.0, block_size=4096
        ),
        "hier_group_vote_mono_g8_f16_r64_d20k": lambda: hierarchical_majority_vote(
            tensor, topology
        ),
        "hier_group_vote_bs4k_g8_f16_r64_d20k": lambda: hierarchical_majority_vote(
            tensor, topology, block_size=4096
        ),
    }


#: gradient-engine sweep — (model key, file count) pairs benchmarked for both
#: engines.  The mlp point at f=25 (d≈11k, the paper's K=25 regime) carries
#: the ≥3x acceptance gate (see benchmarks/test_bench_micro.py).
GRADIENT_SWEEP = (("mlp", 4), ("mlp", 25), ("cnn", 25), ("resnet_lite", 25))


def _gradient_models():
    return {
        "mlp": (lambda: build_mlp(100, 10, hidden=(64, 64), seed=0), "dense"),
        "cnn": (lambda: build_cnn((1, 8, 8), 4, channels=(4, 8), seed=0), "image"),
        "resnet_lite": (
            lambda: build_resnet_lite(100, 10, width=64, num_blocks=3, seed=0),
            "dense",
        ),
    }


def _gradient_files(kind, num_files, batch=8):
    rng = np.random.default_rng(11)
    files = []
    for _ in range(num_files):
        if kind == "dense":
            files.append((rng.standard_normal((batch, 100)), rng.integers(0, 10, batch)))
        else:
            files.append(
                (rng.standard_normal((batch // 2, 1, 8, 8)), rng.integers(0, 4, batch // 2))
            )
    return files


def gradient_engine_kernels() -> dict:
    """Stacked vs looped per-file gradient kernels over the f x model sweep."""
    models = _gradient_models()
    kernels = {}
    for model_key, num_files in GRADIENT_SWEEP:
        model_fn, kind = models[model_key]
        files = _gradient_files(kind, num_files)
        for engine in ("stacked", "looped"):
            computer = ModelGradientComputer(model_fn(), engine=engine)
            params = computer.initial_params()
            kernels[f"gradient_engine_{engine}_{model_key}_f{num_files}"] = (
                lambda c=computer, p=params, fs=files: c.batched(p, fs)
            )
    return kernels


def adaptive_attack_kernels() -> dict:
    """Attacked PS rounds at the paper's K=25 scale (f=25, r=5, d≈11k).

    Each kernel runs one full attacked round: lazy COW vote tensor from the
    honest gradients, Byzantine slot marking, the attack's vectorized
    ``apply_tensor`` write, then the ByzShield aggregate.  ``constant`` is
    the paper's fixed-payload baseline; the others are the adaptive zoo,
    whose closed-form searches (Fang's λ ladder, min-max's γ bisection) must
    stay within 1.5x of the constant round — the gate
    :func:`adaptive_attack_gate` enforces on every non-smoke run.
    """
    from repro.attacks.base import AttackContext
    from repro.attacks.registry import create_attack

    assignment = RamanujanAssignment(m=5, s=5).assignment
    dim = 11_274  # match the replication kernels' MLP-sized gradients
    honest = np.random.default_rng(11).standard_normal((assignment.num_files, dim))
    gradients = {i: honest[i] for i in range(honest.shape[0])}
    byzantine = tuple(range(5))  # q=5 of K=25
    pipeline = ByzShieldPipeline(assignment, validate=False)

    def attacked_round(attack):
        tensor = VoteTensor.from_honest(assignment, honest)
        tensor.mark_byzantine(byzantine)
        context = AttackContext(
            assignment=assignment,
            byzantine_workers=byzantine,
            honest_file_gradients=gradients,
            iteration=0,
            rng=np.random.default_rng(13),
            honest_matrix=honest,
        )
        attack.apply_tensor(context, tensor)
        return pipeline.aggregate_tensor(tensor)

    zoo = {
        "constant": create_attack("constant"),
        "inner_product": create_attack("inner_product"),
        "sign_flip": create_attack("sign_flip"),
        "fang_median": create_attack("fang", defense="median"),
        "min_max_unit": create_attack("min_max", direction="unit"),
        "min_sum_std": create_attack("min_sum", direction="std"),
    }
    return {
        f"adaptive_attack_{key}_round_f25_r5_d11k": (
            lambda attack=attack: attacked_round(attack)
        )
        for key, attack in zoo.items()
    }


#: Largest allowed slowdown of any adaptive-attack round vs the constant
#: baseline round (same tensor build + aggregate, trivial payload).
ADAPTIVE_VS_CONSTANT_LIMIT = 1.5


def adaptive_attack_gate(results: dict) -> list:
    """Adaptive rounds vs the constant baseline; return the violations."""
    baseline = results["adaptive_attack_constant_round_f25_r5_d11k"]["min_s"]
    violations = []
    for name, entry in results.items():
        if not name.startswith("adaptive_attack_") or "constant" in name:
            continue
        ratio = entry["min_s"] / baseline
        marker = ""
        if ratio > ADAPTIVE_VS_CONSTANT_LIMIT:
            marker = f"  <-- exceeds {ADAPTIVE_VS_CONSTANT_LIMIT:.1f}x limit"
            violations.append((name, ratio))
        print(f"adaptive round cost vs constant: {name:48s} {ratio:5.2f}x{marker}")
    return violations


def build_kernels() -> dict:
    """Name -> zero-argument callable for every benchmarked kernel."""
    rng = np.random.default_rng(0)
    votes = rng.standard_normal((25, 20_000))
    round_tensor = make_round_tensor()
    round_tensor_f32 = round_tensor.astype(np.float32)
    median = CoordinateWiseMedian()
    krum = MultiKrumAggregator(num_byzantine=5)
    bulyan = BulyanAggregator(num_byzantine=5)

    # End-to-end pipeline aggregate at the paper's K=25 Ramanujan scale
    # (m=s=5: f=25 files, r=5 replicas).
    assignment = RamanujanAssignment(m=5, s=5).assignment
    pipeline = ByzShieldPipeline(assignment, validate=False)
    pipeline_tensor = VoteTensor.from_honest(
        assignment, np.random.default_rng(1).standard_normal((assignment.num_files, 10_000))
    )
    pipeline_votes = pipeline_tensor.to_file_votes()

    kernels = {
        "majority_vote_tensor_exact_f25_r5_d10k": lambda: majority_vote_tensor(
            round_tensor
        ),
        "majority_vote_tensor_tol_f25_r5_d10k": lambda: majority_vote_tensor(
            round_tensor, 0.5
        ),
        "dtype_float32_majority_exact_f25_r5_d10k": lambda: majority_vote_tensor(
            round_tensor_f32
        ),
        "majority_vote_legacy_per_file_f25_r5_d10k": lambda: [
            _reference_exact_majority(round_tensor[i])
            for i in range(round_tensor.shape[0])
        ],
        "byzshield_aggregate_tensor_f25_r5_d10k": lambda: pipeline.aggregate_tensor(
            pipeline_tensor
        ),
        "byzshield_aggregate_dict_f25_r5_d10k": lambda: pipeline.aggregate(
            pipeline_votes
        ),
        "coordinate_median_25x20k": lambda: median(votes),
        "multi_krum_25x20k": lambda: krum(votes),
        "bulyan_25x20k": lambda: bulyan(votes),
    }
    kernels.update(replication_round_kernels())
    kernels.update(event_round_kernels())
    kernels.update(hierarchical_vote_kernels())
    kernels.update(gradient_engine_kernels())
    kernels.update(adaptive_attack_kernels())
    return kernels


def time_kernel(fn, rounds: int) -> float:
    fn()  # warm up allocations and caches
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def previous_snapshot(current: pathlib.Path | None = None) -> pathlib.Path | None:
    snapshots = sorted(
        p for p in RESULTS_DIR.glob("BENCH_*.json") if p != current
    )
    return snapshots[-1] if snapshots else None


def fresh_snapshot_path(date: str) -> pathlib.Path:
    """BENCH_<date>.json, suffixed ``_rNN`` when same-day snapshots exist.

    The zero-padded suffix sorts after the unsuffixed name and in run order,
    so :func:`previous_snapshot` still picks the latest snapshot as the
    comparison baseline instead of overwriting it.
    """
    path = RESULTS_DIR / f"BENCH_{date}.json"
    run = 2
    while path.exists():
        path = RESULTS_DIR / f"BENCH_{date}_r{run:02d}.json"
        run += 1
    return path


def compare_to_baseline(results: dict, baseline_path: pathlib.Path, tolerance: float) -> list:
    """Print per-kernel deltas vs a snapshot; return the regressed kernels."""
    baseline = json.loads(baseline_path.read_text())["kernels"]
    print(f"comparing against {baseline_path.name} (tolerance {tolerance:.0%})")
    regressions = []
    for name, entry in results.items():
        if name not in baseline:
            continue
        before, after = baseline[name]["min_s"], entry["min_s"]
        change = after / before - 1.0
        marker = ""
        if change > tolerance:
            marker = "  <-- REGRESSION"
            regressions.append((name, change))
        print(f"{name:48s} {change:+7.1%}{marker}")
    return regressions


def report_speedups(results: dict) -> None:
    """Print the vectorized-vs-legacy headline ratios of the snapshot."""
    tensor = results["majority_vote_tensor_exact_f25_r5_d10k"]["min_s"]
    legacy = results["majority_vote_legacy_per_file_f25_r5_d10k"]["min_s"]
    print(f"\nvectorized majority vote speedup vs legacy loop: {legacy / tensor:.2f}x")
    cow = results["replication_cow_round_f25_r5_d11k"]["min_s"]
    dense = results["replication_materialized_round_f25_r5_d11k"]["min_s"]
    print(f"copy-on-write replication speedup vs materialized: {dense / cow:.2f}x")
    cow32 = results["dtype_float32_cow_round_f25_r5_d11k"]["min_s"]
    dense32 = results["dtype_float32_materialized_round_f25_r5_d11k"]["min_s"]
    print(
        "copy-on-write replication speedup vs materialized (float32): "
        f"{dense32 / cow32:.2f}x"
    )
    flat = results["blockwise_vote_flat_mono_f16_r64_d20k"]["min_s"]
    hier = results["hier_group_vote_bs4k_g8_f16_r64_d20k"]["min_s"]
    print(f"hierarchical blockwise vote speedup vs flat monolithic (r=64): {flat / hier:.2f}x")
    for model_key, num_files in GRADIENT_SWEEP:
        stacked = results[f"gradient_engine_stacked_{model_key}_f{num_files}"]["min_s"]
        looped = results[f"gradient_engine_looped_{model_key}_f{num_files}"]["min_s"]
        print(
            f"stacked gradient engine speedup vs looped ({model_key}, f={num_files}): "
            f"{looped / stacked:.2f}x"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds", type=int, default=30, help="timing repetitions per kernel"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional slowdown vs the previous snapshot",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick sanity run: few rounds, no snapshot written, no comparison",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline snapshot without writing "
        "a new one (the CI regression gate)",
    )
    parser.add_argument(
        "--no-fail",
        action="store_true",
        help="report regressions but exit 0 anyway",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=None, help="snapshot path override"
    )
    args = parser.parse_args(argv)

    rounds = 3 if args.smoke else args.rounds
    kernels = build_kernels()
    results = {}
    for name, fn in kernels.items():
        best = time_kernel(fn, rounds)
        results[name] = {"min_s": best, "ops_per_s": 1.0 / best}
        print(f"{name:48s} {best * 1e3:9.3f} ms   {1.0 / best:10.1f} ops/s")

    report_speedups(results)
    gate_violations = adaptive_attack_gate(results)

    if args.smoke:
        return 0

    if gate_violations and not args.no_fail:
        print(f"\n{len(gate_violations)} adaptive attack round(s) over the cost limit")
        return 1

    if args.check:
        baseline_path = previous_snapshot()
        if baseline_path is None:
            print("no committed snapshot to check against")
            return 0
        regressions = compare_to_baseline(results, baseline_path, args.tolerance)
        if regressions and not args.no_fail:
            print(f"\n{len(regressions)} kernel(s) regressed beyond tolerance")
            return 1
        return 0

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    date = datetime.date.today().isoformat()
    output = args.output or fresh_snapshot_path(date)
    baseline_path = previous_snapshot(output)
    output.write_text(
        json.dumps({"date": date, "rounds": rounds, "kernels": results}, indent=2)
        + "\n"
    )
    print(f"wrote {output}")

    if baseline_path is None:
        print("no previous snapshot; baseline established")
        return 0
    regressions = compare_to_baseline(results, baseline_path, args.tolerance)
    if regressions and not args.no_fail:
        print(f"\n{len(regressions)} kernel(s) regressed beyond tolerance")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
