"""Helpers shared by the accuracy-figure benchmarks (Figures 2–11).

Each figure benchmark trains every curve of the figure at the ``small`` scale
of the synthetic substrate (see ``repro.experiments.accuracy.SCALE_PRESETS``),
checks structural invariants (every curve produced a full accuracy series, the
realized distortion fraction matches the static worst-case analysis) and saves
both the accuracy-versus-iteration series and a per-curve summary under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np

from benchmarks.conftest import save_text
from repro.experiments.accuracy import figure_spec, run_accuracy_figure
from repro.experiments.report import format_rows, format_series
from repro.training.history import TrainingHistory

#: scale can be overridden (e.g. BYZSHIELD_BENCH_SCALE=medium) for longer runs
BENCH_SCALE = os.environ.get("BYZSHIELD_BENCH_SCALE", "small")
BENCH_SEED = int(os.environ.get("BYZSHIELD_BENCH_SEED", "0"))


def run_figure(figure_id: str) -> dict[str, TrainingHistory]:
    """Train every curve of ``figure_id`` at the benchmark scale."""
    return run_accuracy_figure(figure_id, scale=BENCH_SCALE, seed=BENCH_SEED)


def summarize(histories: dict[str, TrainingHistory]) -> list[dict[str, float]]:
    """Per-curve summary rows (final/best accuracy, mean distortion)."""
    rows = []
    for label, history in histories.items():
        rows.append(
            {
                "curve": label,
                "final_accuracy": history.final_accuracy,
                "best_accuracy": history.best_accuracy,
                "mean_accuracy": history.mean_accuracy(),
                "mean_distortion": float(history.distortion_fractions.mean()),
                "final_train_loss": float(history.train_losses[-1]),
            }
        )
    return rows


def save_figure_results(
    results_dir: pathlib.Path, name: str, title: str, histories: dict[str, TrainingHistory]
) -> None:
    """Render the accuracy curves and the summary table to a results file."""
    series = {label: history.accuracy_series() for label, history in histories.items()}
    text = (
        format_series(series, title=f"{title} — top-1 test accuracy vs iteration")
        + "\n\n"
        + format_rows(summarize(histories), title=f"{title} — per-curve summary")
    )
    save_text(results_dir, name, text)


def check_figure_invariants(figure_id: str, histories: dict[str, TrainingHistory]) -> None:
    """Structural checks every figure must satisfy regardless of scale."""
    spec = figure_spec(figure_id)
    assert set(histories) == {run.label for run in spec.runs}
    for label, history in histories.items():
        iterations, accuracies = history.accuracy_series()
        assert iterations.size > 0, label
        assert np.all((0.0 <= accuracies) & (accuracies <= 1.0)), label
        assert np.all(np.isfinite(history.train_losses)), label
    # ByzShield's realized distortion fraction never exceeds the competing
    # schemes' at the same q (the structural advantage behind the figures).
    by_q: dict[int, dict[str, float]] = {}
    for run in spec.runs:
        history = histories[run.label]
        by_q.setdefault(run.num_byzantine, {})[run.pipeline] = float(
            history.distortion_fractions.mean()
        )
    for q, fractions in by_q.items():
        if "byzshield" in fractions:
            for other, value in fractions.items():
                if other != "byzshield":
                    assert fractions["byzshield"] <= value + 1e-9, (q, fractions)
