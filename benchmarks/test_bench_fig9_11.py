"""Benchmark: paper Figures 9–11 — K = 15 cluster (MOLS l=5, r=3), ALIE, q = 2.

Figure 9 compares median-based defenses, Figure 10 Bulyan, Figure 11
Multi-Krum, all on the smaller 15-worker cluster of the paper's appendix.
"""

import pytest

from benchmarks.figure_helpers import (
    check_figure_invariants,
    run_figure,
    save_figure_results,
)

FIGURES = {
    "fig9": "Figure 9: ALIE attack, median-based defenses (K=15)",
    "fig10": "Figure 10: ALIE attack, Bulyan-based defenses (K=15)",
    "fig11": "Figure 11: ALIE attack, Multi-Krum-based defenses (K=15)",
}


@pytest.mark.benchmark(group="figures")
@pytest.mark.parametrize("figure_id", sorted(FIGURES))
def test_fig9_to_11_k15_alie_defenses(benchmark, results_dir, figure_id):
    histories = benchmark.pedantic(run_figure, args=(figure_id,), rounds=1, iterations=1)
    check_figure_invariants(figure_id, histories)
    save_figure_results(results_dir, figure_id, FIGURES[figure_id], histories)
    # MOLS (l=5, r=3) with q=2: exactly one of 25 file gradients is corrupted.
    assert histories["ByzShield, q=2"].distortion_fractions.mean() == pytest.approx(1 / 25)
