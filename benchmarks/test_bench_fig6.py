"""Benchmark: paper Figure 6 — reversed-gradient attack, median defenses, q in {3, 9}.

The q = 9 case is the one where DETOX's grouping breaks (ε̂ = 0.6 of its group
votes are corrupted under the omniscient selection) while ByzShield keeps
ε̂ = 0.36 and keeps training.
"""

import pytest

from benchmarks.figure_helpers import (
    check_figure_invariants,
    run_figure,
    save_figure_results,
)


@pytest.mark.benchmark(group="figures")
def test_fig6_reversed_gradient_median_defenses(benchmark, results_dir):
    histories = benchmark.pedantic(run_figure, args=("fig6",), rounds=1, iterations=1)
    check_figure_invariants("fig6", histories)
    save_figure_results(
        results_dir,
        "fig6",
        "Figure 6: reversed-gradient attack, median-based defenses",
        histories,
    )
    assert histories["ByzShield, q=9"].distortion_fractions.mean() == pytest.approx(0.36)
    assert histories["DETOX-MoM, q=9"].distortion_fractions.mean() == pytest.approx(0.6)
    # DETOX's majority is overwhelmed at q=9: ByzShield must end up at least as
    # accurate as DETOX under the same attack.
    assert (
        histories["ByzShield, q=9"].final_accuracy
        >= histories["DETOX-MoM, q=9"].final_accuracy - 0.05
    )
