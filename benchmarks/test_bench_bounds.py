"""Benchmark: Section 5.1 / 5.2 — tightness of the γ bound and Claim 2 values."""

import pytest

from benchmarks.conftest import save_text
from repro.assignment.ramanujan import RamanujanAssignment
from repro.experiments.bounds import bound_tightness_table, claim2_verification_table
from repro.experiments.report import format_rows


@pytest.mark.benchmark(group="bounds")
def test_gamma_bound_tightness(benchmark, results_dir):
    rows = benchmark.pedantic(
        bound_tightness_table, kwargs={"q_values": range(2, 8)}, rounds=1, iterations=1
    )
    save_text(
        results_dir,
        "bounds_gamma",
        format_rows(rows, title="Gamma bound tightness (MOLS l=5, r=3)"),
    )
    for row in rows:
        assert row["bound_satisfied"]
        # gamma/f and the closed-form Section 5.1.1 bound coincide.
        assert row["gamma_over_f"] == pytest.approx(
            row["closed_form_epsilon_bound"], rel=1e-6
        )


@pytest.mark.benchmark(group="bounds")
def test_claim2_exact_small_q_values(benchmark, results_dir):
    def run():
        return {
            "mols": claim2_verification_table(),
            "ramanujan_case2": claim2_verification_table(RamanujanAssignment(m=5, s=5)),
        }

    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(
        format_rows(rows, title=f"Claim 2 check — {name}") for name, rows in tables.items()
    )
    save_text(results_dir, "bounds_claim2", text)
    for rows in tables.values():
        assert all(row["match"] for row in rows)
