"""Benchmark: paper Table 6 — MOLS (K, f, l, r) = (21, 49, 7, 3), q = 2..10."""

import pytest

from benchmarks.conftest import save_text
from repro.experiments.paper_reference import TABLE6
from repro.experiments.report import format_rows
from repro.experiments.tables import generate_table6


@pytest.mark.benchmark(group="tables")
def test_table6_distortion_fractions(benchmark, results_dir):
    rows = benchmark.pedantic(generate_table6, rounds=1, iterations=1)
    save_text(results_dir, "table6", format_rows(rows, title="Table 6 (MOLS l=7, r=3)"))
    assert [row["q"] for row in rows] == sorted(TABLE6)
    for row in rows:
        c_max, eps, eps_base, eps_frc, gamma = TABLE6[row["q"]]
        assert row["c_max"] == c_max
        assert row["epsilon_byzshield"] == pytest.approx(eps, abs=0.006)
        assert row["epsilon_frc"] == pytest.approx(eps_frc, abs=0.006)
        # The paper prints gamma to two decimals and its q=2 row (2.23) differs
        # from the exact value of the formula (14 - 294/25 = 2.24) by one unit
        # in the last place, so the comparison allows 0.02.
        assert row["gamma"] == pytest.approx(gamma, abs=0.02)
        # The paper's baseline column has a typo at q=10 (0.52 vs 10/21), so the
        # baseline fraction is checked against its definition instead.
        assert row["epsilon_baseline"] == pytest.approx(row["q"] / 21, abs=1e-9)
