"""Benchmark: paper Table 3 — MOLS (K, f, l, r) = (15, 25, 5, 3), q = 2..7.

Regenerates the distortion-fraction table with the exhaustive optimizer and
checks every row (c_max, ε̂ for ByzShield / baseline / FRC, and γ) against the
published values.
"""

import pytest

from benchmarks.conftest import save_text
from repro.experiments.paper_reference import TABLE3
from repro.experiments.report import format_rows
from repro.experiments.tables import generate_table3


@pytest.mark.benchmark(group="tables")
def test_table3_distortion_fractions(benchmark, results_dir):
    rows = benchmark.pedantic(generate_table3, rounds=1, iterations=1)
    save_text(results_dir, "table3", format_rows(rows, title="Table 3 (MOLS l=5, r=3)"))
    assert [row["q"] for row in rows] == sorted(TABLE3)
    for row in rows:
        c_max, eps, eps_base, eps_frc, gamma = TABLE3[row["q"]]
        assert row["exact"], "Table 3 rows must come from exhaustive search"
        assert row["c_max"] == c_max
        assert row["epsilon_byzshield"] == pytest.approx(eps, abs=0.005)
        assert row["epsilon_baseline"] == pytest.approx(eps_base, abs=0.005)
        assert row["epsilon_frc"] == pytest.approx(eps_frc, abs=0.005)
        assert row["gamma"] == pytest.approx(gamma, abs=0.01)
