"""Benchmark: paper Table 5 — MOLS (K, f, l, r) = (35, 49, 7, 5), q = 3..13.

Exhaustive search is used up to q = 8 (C(35, 8) ≈ 23.5M sets, the same point
at which the paper notes exhaustive evaluation becomes expensive); larger q
rows use the greedy + swap local-search heuristic, which is a lower bound on
the true c_max.  The heuristic matches the paper everywhere except q = 9,
where it reports 9 versus the paper's exhaustive 10 — see EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import save_text
from repro.experiments.paper_reference import TABLE5
from repro.experiments.report import format_rows
from repro.experiments.tables import generate_table5

#: rows the heuristic is known to undershoot relative to the paper's exhaustive value
HEURISTIC_GAP_ROWS = {9}
#: enough to run the exhaustive optimizer for q <= 8
EXHAUSTIVE_LIMIT = 25_000_000


@pytest.mark.benchmark(group="tables")
def test_table5_distortion_fractions(benchmark, results_dir):
    rows = benchmark.pedantic(
        generate_table5,
        kwargs={"exhaustive_limit": EXHAUSTIVE_LIMIT},
        rounds=1,
        iterations=1,
    )
    save_text(results_dir, "table5", format_rows(rows, title="Table 5 (MOLS l=7, r=5)"))
    assert [row["q"] for row in rows] == sorted(TABLE5)
    for row in rows:
        q = row["q"]
        c_max, eps, eps_base, eps_frc, gamma = TABLE5[q]
        assert row["gamma"] == pytest.approx(gamma, abs=0.01)
        assert row["epsilon_frc"] == pytest.approx(eps_frc, abs=0.005)
        # c_max never exceeds the expansion bound.
        assert row["c_max"] <= row["gamma"] + 1e-9
        if row["exact"] or q not in HEURISTIC_GAP_ROWS:
            assert row["c_max"] == c_max, f"q={q}"
        else:
            # Heuristic rows are lower bounds on the exhaustive optimum.
            assert row["c_max"] <= c_max
            assert row["c_max"] >= c_max - 1
