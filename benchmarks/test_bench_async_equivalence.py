"""Full-catalog sync-equivalence sweep for the event-driven runtime.

Tier-1 property-tests a representative pipelines x attacks x faults subset
(``tests/test_event_engine.py``); this bench-tier sweep replays *every*
synchronous catalog scenario twice — once on the lockstep round loop, once
under an event runtime with ``deadline=inf`` — and asserts the two traces
agree bit-exactly on every stage except the round clock, which the two
engines intentionally define differently (legacy ``max(delay) + base`` vs
the event engine's arrival-schedule clock).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenarios import RuntimeSpec, get_scenario, run_scenario, scenario_names

SYNC_SCENARIOS = [
    name for name in scenario_names() if not get_scenario(name).runtime.is_event
]


@pytest.mark.parametrize("name", SYNC_SCENARIOS)
def test_inf_deadline_event_run_matches_sync_trace(name):
    spec = get_scenario(name)
    event_spec = dataclasses.replace(
        spec, runtime=RuntimeSpec(deadline=float("inf"))
    )
    sync = run_scenario(spec)
    event = run_scenario(event_spec)
    assert len(sync.trace.rounds) == len(event.trace.rounds)
    for a, b in zip(sync.trace.rounds, event.trace.rounds):
        assert a.votes_digest == b.votes_digest
        assert a.winners_digest == b.winners_digest
        assert a.aggregate_digest == b.aggregate_digest
        assert a.params_digest == b.params_digest
        assert a.mean_loss_hex == b.mean_loss_hex
        assert a.faults == b.faults
        assert a.q == b.q and a.byzantine == b.byzantine
        assert a.num_distorted == b.num_distorted
    assert sync.trace.final_params_digest == event.trace.final_params_digest
    assert sync.trace.final_accuracy_hex == event.trace.final_accuracy_hex
