"""Benchmark: ablations beyond the paper's tables.

Two ablations motivated by DESIGN.md:

* **Assignment structure** — is the expander placement doing the work, or is
  any redundancy enough?  Compares the worst-case distortion fraction of MOLS
  and Ramanujan placements against random biregular placements with identical
  ``(K, f, l, r)`` and against FRC grouping.
* **Post-vote aggregator** — the conclusion's remark that ByzShield can be
  paired with non-trivial aggregation rules: trains ByzShield under ALIE with
  median, trimmed mean, Multi-Krum, Bulyan and geometric median.
"""

import pytest

from benchmarks.conftest import save_text
from repro.experiments.ablations import (
    aggregator_ablation,
    assignment_structure_ablation,
)
from repro.experiments.report import format_rows


@pytest.mark.benchmark(group="ablations")
def test_assignment_structure_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(
        assignment_structure_ablation,
        kwargs={"q_values": range(2, 8), "num_random_draws": 5},
        rounds=1,
        iterations=1,
    )
    save_text(
        results_dir,
        "ablation_assignment",
        format_rows(rows, title="Assignment-structure ablation (K=15, f=25, l=5, r=3)"),
    )
    for row in rows:
        # The MOLS and Ramanujan Case 1 graphs have identical worst-case ε̂.
        assert row["epsilon_mols"] == pytest.approx(row["epsilon_ramanujan"], abs=1e-9)
        # The structured placements are never worse than the FRC grouping and
        # never worse than the unluckiest random placement.
        assert row["epsilon_mols"] <= row["epsilon_frc"] + 1e-9
        assert row["epsilon_mols"] <= row["epsilon_random_worst"] + 1e-9


@pytest.mark.benchmark(group="ablations")
def test_aggregator_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(
        aggregator_ablation, kwargs={"num_byzantine": 5, "scale_iterations": 40}, rounds=1, iterations=1
    )
    save_text(
        results_dir,
        "ablation_aggregator",
        format_rows(rows, title="ByzShield post-vote aggregator ablation (ALIE, q=5, K=25)"),
    )
    names = {row["aggregator"] for row in rows}
    assert names == {"median", "trimmed_mean", "multi_krum", "bulyan", "geometric_median"}
    for row in rows:
        assert 0.0 <= row["final_accuracy"] <= 1.0
        # Every variant sees the same corrupted-vote fraction (2/25).
        assert row["mean_distortion"] == pytest.approx(0.08)
