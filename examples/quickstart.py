#!/usr/bin/env python
"""Quickstart: ByzShield's task assignment and distortion analysis in 60 seconds.

This example mirrors the paper's Example 1 (Table 2) and Table 3:

1. build the MOLS-based assignment with computational load l = 5 and
   replication r = 3 (K = 15 workers, f = 25 files);
2. inspect its structure (who stores what, the spectrum of the normalized
   bi-adjacency matrix);
3. run the omniscient worst-case distortion analysis for a range of Byzantine
   budgets q, reproducing the paper's Table 3 comparison against the baseline
   and FRC (DETOX/DRACO) placements.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MOLSAssignment, distortion_comparison_table, max_distortion
from repro.experiments.report import format_rows
from repro.graphs import gram_spectrum, second_eigenvalue


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build the assignment of the paper's Example 1.
    # ------------------------------------------------------------------ #
    scheme = MOLSAssignment(load=5, replication=3)
    assignment = scheme.assignment
    print("ByzShield MOLS assignment")
    print(f"  workers K          = {assignment.num_workers}")
    print(f"  files   f          = {assignment.num_files}")
    print(f"  load    l          = {assignment.computational_load}")
    print(f"  replication r      = {assignment.replication}")
    print()

    # The file placement — this is exactly Table 2 of the paper.
    print("File placement (paper Table 2):")
    for worker, files in assignment.worker_file_table():
        print(f"  U{worker:<2d} stores files {list(files)}")
    print()

    # ------------------------------------------------------------------ #
    # 2. Spectral properties: the graph is an optimal expander (µ₁ = 1/r).
    # ------------------------------------------------------------------ #
    eigenvalues = gram_spectrum(assignment)
    print(f"Second eigenvalue µ₁ of A·Aᵀ = {second_eigenvalue(assignment):.4f} "
          f"(theory: 1/r = {1 / assignment.replication:.4f})")
    print(f"Top five eigenvalues: {[round(float(v), 4) for v in eigenvalues[:5]]}")
    print()

    # ------------------------------------------------------------------ #
    # 3. Worst-case distortion analysis (paper Table 3).
    # ------------------------------------------------------------------ #
    result = max_distortion(assignment, num_byzantine=3, method="exhaustive")
    print(
        f"Omniscient adversary with q=3 corrupts c_max={result.c_max} of "
        f"{assignment.num_files} file gradients (ε̂ = {result.epsilon:.2f}), e.g. by "
        f"controlling workers {list(result.byzantine_workers)}"
    )
    print()

    rows = distortion_comparison_table(assignment, range(2, 8))
    print(format_rows(rows, title="Paper Table 3: ByzShield vs baseline vs FRC"))


if __name__ == "__main__":
    main()
