#!/usr/bin/env python
"""Robust-aggregation shootout on a fixed set of corrupted gradients.

The paper composes its redundancy layer with classic robust aggregators
(median, median-of-means, Multi-Krum, Bulyan, signSGD).  This example isolates
that layer: it generates a batch of honest gradients plus a configurable
fraction of adversarial votes (constant, reversed or ALIE-style collusion) and
measures how far each aggregator's output lands from the honest mean — the
quantity that ultimately decides whether SGD keeps descending.

Run with::

    python examples/aggregator_shootout.py [--dim 1000] [--votes 25] [--byzantine 5]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    BulyanAggregator,
    CoordinateWiseMedian,
    GeometricMedianAggregator,
    KrumAggregator,
    MeanAggregator,
    MedianOfMeansAggregator,
    MultiKrumAggregator,
    SignSGDMajorityAggregator,
    TrimmedMeanAggregator,
)
from repro.experiments.report import format_rows


def make_votes(kind: str, num_votes: int, num_byzantine: int, dim: int, rng) -> np.ndarray:
    """Honest gradients plus ``num_byzantine`` adversarial votes of the given kind."""
    honest = rng.standard_normal((num_votes - num_byzantine, dim)) * 0.5 + 1.0
    if kind == "constant":
        bad = np.full((num_byzantine, dim), -10.0)
    elif kind == "reversed":
        bad = -100.0 * honest[: num_byzantine if num_byzantine <= honest.shape[0] else 1]
        if bad.shape[0] < num_byzantine:
            bad = np.tile(bad, (num_byzantine, 1))[:num_byzantine]
    elif kind == "alie":
        mean, std = honest.mean(axis=0), honest.std(axis=0)
        bad = np.tile(mean - 1.0 * std, (num_byzantine, 1))
    else:
        raise ValueError(f"unknown attack kind {kind!r}")
    return np.vstack([honest, bad]), honest


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dim", type=int, default=1000)
    parser.add_argument("--votes", type=int, default=25)
    parser.add_argument("--byzantine", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    q = args.byzantine
    aggregators = {
        "mean (not robust)": MeanAggregator(),
        "coordinate-wise median": CoordinateWiseMedian(),
        "trimmed mean": TrimmedMeanAggregator(trim=q),
        "median-of-means": MedianOfMeansAggregator(num_groups=max(args.votes // 5, 1)),
        "Krum": KrumAggregator(num_byzantine=q),
        "Multi-Krum": MultiKrumAggregator(num_byzantine=q),
        "Bulyan": BulyanAggregator(num_byzantine=q),
        "geometric median": GeometricMedianAggregator(),
        "signSGD majority": SignSGDMajorityAggregator(),
    }

    for kind in ("constant", "reversed", "alie"):
        votes, honest = make_votes(kind, args.votes, q, args.dim, rng)
        target = honest.mean(axis=0)
        rows = []
        for label, aggregator in aggregators.items():
            try:
                output = aggregator(votes)
            except Exception as exc:  # breakdown-point violations, etc.
                rows.append({"aggregator": label, "error_vs_honest_mean": float("nan"),
                             "note": type(exc).__name__})
                continue
            if label == "signSGD majority":
                # signSGD outputs a direction, not a magnitude: compare signs.
                error = float(np.mean(np.sign(output) != np.sign(target)))
                note = "fraction of wrong signs"
            else:
                error = float(np.linalg.norm(output - target) / np.linalg.norm(target))
                note = "relative L2 error"
            rows.append({"aggregator": label, "error_vs_honest_mean": error, "note": note})
        print(
            format_rows(
                rows,
                title=f"Attack = {kind}: {q}/{args.votes} votes Byzantine, dim={args.dim}",
            )
        )
        print()


if __name__ == "__main__":
    main()
