#!/usr/bin/env python
"""Robust-aggregation shootout, run as an end-to-end training campaign.

The paper composes its redundancy layer with classic robust aggregators
(median, median-of-means, Multi-Krum, Bulyan, signSGD).  This example sweeps
that second stage with the campaign engine: a ``CampaignSpec`` holds one
ByzShield/MOLS base scenario and a grid of (aggregator × attack) cells, the
``CampaignExecutor`` fans the expanded scenarios across worker processes,
and the final-accuracy pivot shows which aggregators keep SGD descending
under each attack.  With ``seed_policy="fixed"`` every cell trains on the
same batches against the same adversary draws, so the comparison is paired —
the campaign analogue of feeding every aggregator the same corrupted votes.

Run with::

    python examples/aggregator_shootout.py [--processes 4] [--byzantine 2] [--out DIR]

``--out`` attaches a result store, making re-runs incremental.
"""

from __future__ import annotations

import argparse
from typing import Any

from repro.campaigns import CampaignExecutor, CampaignSpec, ResultStore
from repro.experiments.report import format_rows


NUM_FILES = 25  # votes reaching the second stage under MOLS(load=5, r=3)


def build_campaign(q: int, seed: int) -> CampaignSpec:
    """The (aggregator × attack) sweep over one ByzShield/MOLS base run.

    Aggregators whose breakdown-point preconditions cannot hold at this
    ``q`` (Bulyan needs ``4q + 3 <= 25`` votes, trimmed-mean ``2q < 25``)
    are left out of the grid instead of crashing the sweep mid-campaign —
    the same story as the paper's "Bulyan inapplicable at q = 9" note.
    """

    def pipeline(aggregator: str, **params: Any) -> dict[str, Any]:
        entry: dict[str, Any] = {"kind": "byzshield", "aggregator": aggregator}
        if params:
            entry["aggregator_params"] = params
        return {"label": aggregator, "value": entry}

    def attack(label: str, name: str, **params: Any) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "name": name,
            "selection": "omniscient",
            "schedule": {"kind": "static", "q": q},
        }
        if params:
            entry["params"] = params
        return {"label": label, "value": entry}

    pipelines = [
        pipeline("mean"),
        pipeline("median"),
        pipeline("median_of_means", num_groups=5),
        pipeline("krum", num_byzantine=q),
        pipeline("multi_krum", num_byzantine=q),
        pipeline("geometric_median"),
        pipeline("signsgd"),
    ]
    if 2 * q < NUM_FILES:
        pipelines.insert(2, pipeline("trimmed_mean", trim=q))
    if 4 * q + 3 <= NUM_FILES:
        pipelines.insert(-2, pipeline("bulyan", num_byzantine=q))

    return CampaignSpec.from_dict(
        {
            "name": "aggregator-shootout",
            "description": "Second-stage robust aggregators under three attacks",
            "seed": seed,
            "seed_policy": "fixed",
            "base": {
                "name": "shootout-base",
                "seed": seed,
                "cluster": {"scheme": "mols", "params": {"load": 5, "replication": 3}},
                "pipeline": {"kind": "byzshield", "aggregator": "median"},
                "data": {"kind": "gaussian", "num_train": 300, "num_test": 100,
                         "num_classes": 4, "dim": 12, "separation": 3.0},
                "model": {"hidden": [16]},
                "training": {"batch_size": 75, "num_iterations": 6, "eval_every": 3},
            },
            "grid": {
                "pipeline": pipelines,
                "attack": [
                    attack("constant", "constant", value=-10.0),
                    attack("reversed", "reversed_gradient", scale=100.0),
                    attack("alie", "alie"),
                ],
            },
        }
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--byzantine", type=int, default=2,
                        help="adversary budget q on the K=15 MOLS cluster")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=0,
                        help="worker processes (0/1 = serial, same results)")
    parser.add_argument("--out", default=None,
                        help="optional result-store root for resumable re-runs")
    args = parser.parse_args()

    campaign = build_campaign(args.byzantine, args.seed)
    store = ResultStore(campaign, root=args.out) if args.out else None
    result = CampaignExecutor(
        campaign, store=store, processes=args.processes
    ).run()

    # Pivot: one row per aggregator, one final-accuracy column per attack.
    attack_labels = [ax for ax in campaign.grid if ax.path == "attack"][0].labels
    rows: dict[str, dict[str, Any]] = {}
    for scenario, record in zip(result.scenarios, result.records):
        row = rows.setdefault(
            scenario.labels["pipeline"], {"aggregator": scenario.labels["pipeline"]}
        )
        row[scenario.labels["attack"]] = float(record.summary["final_accuracy"])
    print(
        format_rows(
            list(rows.values()),
            columns=["aggregator", *attack_labels],
            title=(
                f"Final accuracy after {result.records[0].summary['rounds']} rounds: "
                f"q={args.byzantine} Byzantine workers, ByzShield/MOLS (K=15)"
            ),
        )
    )
    if result.skipped:
        print(f"\n({result.skipped} scenarios served from the store, "
              f"{result.ran} freshly run)")


if __name__ == "__main__":
    main()
