#!/usr/bin/env python
"""Distributed training under an omniscient ALIE attack (paper Figure 2 setup).

Trains the same classifier three ways on the synthetic image-classification
substrate, all under the ALIE attack with the omniscient worst-case choice of
q = 5 Byzantine workers out of K = 25:

* **ByzShield** — Ramanujan Case 2 assignment (r = l = 5), per-file majority
  vote, coordinate-wise median over the 25 voted gradients;
* **baseline median** — no redundancy, coordinate-wise median over the 25
  worker gradients;
* **DETOX (median-of-means)** — FRC grouping into 5 groups of 5 workers,
  per-group vote, median-of-means over the group winners.

All three runs share the dataset, the initial model and the batch sequence, so
the only difference is the defense.  Expect ByzShield's realized distortion
fraction (0.08) to be far below DETOX's (0.2) under this adversary.

Run with::

    python examples/train_under_attack.py [--iterations 150] [--q 5]
"""

from __future__ import annotations

import argparse

from repro import (
    ALIEAttack,
    CoordinateWiseMedian,
    MedianOfMeansAggregator,
    RamanujanAssignment,
    TrainingConfig,
    build_byzshield_trainer,
    build_detox_trainer,
    build_vanilla_trainer,
    build_mlp,
    make_synthetic_images,
)
from repro.data import train_test_split
from repro.experiments.report import format_rows, format_series


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=150, help="training iterations")
    parser.add_argument("--q", type=int, default=5, help="number of Byzantine workers")
    parser.add_argument("--seed", type=int, default=0, help="global seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # Synthetic stand-in for CIFAR-10 (see DESIGN.md substitutions).
    dataset = make_synthetic_images(
        num_samples=3000, num_classes=10, image_size=8, channels=3, seed=args.seed, flatten=True
    )
    train_data, test_data = train_test_split(dataset, test_fraction=0.2, seed=args.seed + 1)

    config = TrainingConfig(
        batch_size=150,
        num_iterations=args.iterations,
        learning_rate=0.05,
        lr_decay=0.96,
        lr_period=15,
        momentum=0.9,
        eval_every=max(args.iterations // 10, 1),
        seed=args.seed,
    )

    def fresh_model():
        # Every run starts from the same w0.
        return build_mlp(train_data.flat_feature_dim, 10, hidden=(64,), seed=args.seed)

    runs = {
        "ByzShield (median)": build_byzshield_trainer(
            scheme=RamanujanAssignment(m=5, s=5),
            model=fresh_model(),
            train_dataset=train_data,
            test_dataset=test_data,
            config=config,
            attack=ALIEAttack(),
            num_byzantine=args.q,
        ),
        "Baseline median": build_vanilla_trainer(
            num_workers=25,
            model=fresh_model(),
            train_dataset=train_data,
            test_dataset=test_data,
            config=config,
            aggregator=CoordinateWiseMedian(),
            attack=ALIEAttack(),
            num_byzantine=args.q,
        ),
        "DETOX (median-of-means)": build_detox_trainer(
            num_workers=25,
            replication=5,
            model=fresh_model(),
            train_dataset=train_data,
            test_dataset=test_data,
            config=config,
            aggregator=MedianOfMeansAggregator(num_groups=2),
            attack=ALIEAttack(),
            num_byzantine=args.q,
        ),
    }

    histories = {}
    for label, trainer in runs.items():
        print(f"training: {label} (q={args.q}, omniscient Byzantine selection)")
        histories[label] = trainer.train(verbose=True)
        print()

    print(format_series(
        {label: history.accuracy_series() for label, history in histories.items()},
        title="Top-1 test accuracy vs iteration",
    ))
    print()
    summary = [
        {
            "defense": label,
            "final_accuracy": history.final_accuracy,
            "best_accuracy": history.best_accuracy,
            "mean_distortion": float(history.distortion_fractions.mean()),
        }
        for label, history in histories.items()
    ]
    print(format_rows(summary, title="Summary"))


if __name__ == "__main__":
    main()
