#!/usr/bin/env python
"""Exploring the task-assignment design space (paper Sections 4 and 5).

ByzShield's central claim is that *which* redundant assignment you pick
matters: two placements with the same computational load and replication can
have very different worst-case robustness.  This example walks the design
space:

1. builds MOLS, Ramanujan Case 1/2, FRC and random biregular placements;
2. computes the spectrum (µ₁) of each and the expansion bound γ;
3. runs the omniscient worst-case distortion analysis across q and prints the
   resulting ε̂ curves — random placements drift toward FRC-like fragility
   while the expander constructions stay at the theoretical optimum.

Run with::

    python examples/assignment_design_space.py
"""

from __future__ import annotations

from repro import (
    FRCAssignment,
    MOLSAssignment,
    RamanujanAssignment,
    RandomAssignment,
    max_distortion,
)
from repro.experiments.report import format_rows
from repro.graphs import second_eigenvalue


def main() -> None:
    load, replication = 5, 3
    num_workers = load * replication          # 15
    num_files = load * load                   # 25

    schemes = {
        "MOLS (l=5, r=3)": MOLSAssignment(load=load, replication=replication),
        "Ramanujan case 1 (m=3, s=5)": RamanujanAssignment(m=replication, s=load),
        "Ramanujan case 2 (m=5, s=5)": RamanujanAssignment(m=5, s=5),
        "Random biregular": RandomAssignment(
            num_workers=num_workers,
            num_files=num_files,
            replication=replication,
            seed=1,
        ),
        "FRC / DETOX grouping": FRCAssignment(
            num_workers=num_workers, replication=replication
        ),
    }

    # ------------------------------------------------------------------ #
    # 1. Geometry and spectra.
    # ------------------------------------------------------------------ #
    geometry = []
    for label, scheme in schemes.items():
        assignment = scheme.assignment
        geometry.append(
            {
                "scheme": label,
                "K": assignment.num_workers,
                "f": assignment.num_files,
                "l": assignment.computational_load,
                "r": assignment.replication,
                "mu1": second_eigenvalue(assignment),
            }
        )
    print(format_rows(geometry, title="Assignment geometries and second eigenvalues"))
    print()
    print(
        "The MOLS and Ramanujan graphs achieve µ₁ = 1/r, the optimum for a "
        "biregular bipartite graph; FRC's disconnected groups have µ₁ = 1 (no "
        "expansion at all), which is exactly why an omniscient adversary can "
        "concentrate its corruptions there."
    )
    print()

    # ------------------------------------------------------------------ #
    # 2. Worst-case distortion across q.
    # ------------------------------------------------------------------ #
    rows = []
    for q in range(2, 8):
        row: dict[str, float] = {"q": q}
        for label, scheme in schemes.items():
            result = max_distortion(scheme.assignment, q, method="auto", seed=0)
            row[label] = result.epsilon
        rows.append(row)
    print(
        format_rows(
            rows,
            title="Worst-case distortion fraction ε̂ under an omniscient adversary",
        )
    )
    print()
    print(
        "Takeaway: with the same storage overhead (r = 3), the expander-based "
        "placements corrupt the fewest file gradients under the worst-case "
        "attack; FRC is consistently the most fragile, and a random placement "
        "sits in between depending on the draw."
    )


if __name__ == "__main__":
    main()
